// NIC device failure model: host-side firmware watchdog, crash-consistent
// emergency evacuation to the host, degraded-mode serving, re-offload on
// revival, accelerator-bank software fallback, and the satellite
// robustness fixes that ride along (restart-episode decay; faults
// injected mid-migration must commit or roll back without losing or
// duplicating actor state).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "ipipe/runtime.h"
#include "netsim/chaos.h"
#include "nic/accelerator.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"
#include "workloads/client.h"

namespace ipipe {
namespace {

using testbed::Cluster;
using testbed::ServerSpec;
using workloads::ClientGen;

constexpr std::uint16_t kEchoReq = 1;
constexpr std::uint16_t kEchoRep = 2;

ClientGen::MakeReq echo_to(netsim::NodeId node, ActorId actor,
                           std::uint32_t frame = 256) {
  workloads::EchoWorkloadParams p;
  p.server = node;
  p.frame_size = frame;
  p.actor = actor;
  p.msg_type = kEchoReq;
  return workloads::echo_workload(p);
}

/// Echo actor whose state is a DMO blob with a known fill pattern —
/// evacuation/migration has real bytes to preserve, and every request
/// probes one byte so corruption is observed, not assumed away.
class StatefulEcho final : public Actor {
 public:
  explicit StatefulEcho(std::uint32_t state_bytes, Ns cost = usec(2))
      : Actor("stateful-echo"), state_bytes_(state_bytes), cost_(cost) {}

  void init(ActorEnv& env) override {
    obj_ = env.dmo_alloc(state_bytes_);
    env.dmo_memset(obj_, 0x5A, 0, state_bytes_);
  }

  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(cost_);
    last_on_nic_ = env.on_nic();
    std::uint8_t byte = 0;
    env.dmo_read(obj_, counter_ % state_bytes_,
                 std::span<std::uint8_t>(&byte, 1));
    if (byte != 0x5A) ++bad_reads_;
    ++counter_;
    ++served_;
    env.reply(req, kEchoRep, {});
  }

  ObjId obj_ = kInvalidObj;
  bool last_on_nic_ = true;
  std::uint32_t state_bytes_;
  Ns cost_;
  std::uint64_t counter_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t bad_reads_ = 0;
};

ServerSpec watchdog_spec() {
  ServerSpec spec;
  spec.ipipe.nic_watchdog = true;
  spec.ipipe.watchdog_heartbeat = usec(100);
  spec.ipipe.watchdog_miss_limit = 3;
  spec.ipipe.watchdog_probe_cap = msec(1);
  return spec;
}

// ------------------------------------------------- watchdog + evacuation --

TEST(NicFailover, CrashEvacuatesServesDegradedAndReoffloads) {
  Cluster cluster;
  auto& server = cluster.add_server(watchdog_spec());
  auto chaos = cluster.make_chaos();

  auto* actor = new StatefulEcho(64 * 1024);
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  netsim::FaultPlan plan;
  plan.nic_crash(0, msec(10), msec(20));
  chaos->execute(plan);

  auto& client = cluster.add_client(10.0, echo_to(0, id));
  client.enable_retries({.timeout = msec(2), .max_retries = 50,
                         .backoff = 1.5, .cap = msec(10)});
  client.start_closed_loop(2, msec(60));
  cluster.run_until(msec(100));

  auto& rt = server.runtime();
  // The watchdog noticed the silence and force-evacuated the actor.
  EXPECT_GE(rt.watchdog_trips(), 1u);
  EXPECT_EQ(rt.evacuations(), 1u);
  EXPECT_GE(rt.evacuated_actors(), 1u);
  EXPECT_GT(rt.evac_replayed_bytes(), 0u) << "mirror replay ran";
  EXPECT_EQ(rt.evac_lost_bytes(), 0u) << "mirror means nothing is lost";
  // Degraded mode genuinely served requests from the host.
  EXPECT_GT(rt.requests_on_host(), 0u);
  // Revival re-offloaded the actor back onto the NIC.
  EXPECT_GE(rt.reoffloads(), 1u);
  const auto* control = rt.control(id);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->mig, MigState::kStable);
  EXPECT_FALSE(control->evacuated);
  EXPECT_EQ(control->loc, ActorLoc::kNic) << "offload was re-established";
  EXPECT_TRUE(actor->last_on_nic_);
  // Crash-consistent: the DMO pattern survived the device loss.
  EXPECT_EQ(actor->bad_reads_, 0u);
  // Zero lost acked requests: retries bridge the outage.
  EXPECT_EQ(client.completed(), client.sent());
  // The chaos log recorded both edges.
  EXPECT_EQ(chaos->nic_crashes(), 1u);
  EXPECT_EQ(chaos->nic_restores(), 1u);
  const std::string log = chaos->event_log_text();
  EXPECT_NE(log.find("nic-crash"), std::string::npos);
  EXPECT_NE(log.find("nic-restore"), std::string::npos);
}

TEST(NicFailover, EvacuationWithoutMirrorLosesNicResidentBytes) {
  Cluster cluster;
  ServerSpec spec = watchdog_spec();
  spec.ipipe.dmo_host_mirror = false;
  auto& server = cluster.add_server(spec);
  auto chaos = cluster.make_chaos();

  auto* actor = new StatefulEcho(32 * 1024);
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  netsim::FaultPlan plan;
  plan.nic_reset(0, msec(10), msec(20));
  chaos->execute(plan);

  auto& client = cluster.add_client(10.0, echo_to(0, id));
  client.enable_retries({.timeout = msec(2), .max_retries = 50,
                         .backoff = 1.5, .cap = msec(10)});
  client.start_closed_loop(2, msec(60));
  cluster.run_until(msec(100));

  auto& rt = server.runtime();
  EXPECT_EQ(rt.evacuations(), 1u);
  EXPECT_EQ(rt.evac_replayed_bytes(), 0u);
  EXPECT_GT(rt.evac_lost_bytes(), 0u) << "no mirror: NIC bytes are gone";
  // The actor survived (zero-filled objects), service continued.
  EXPECT_GT(actor->bad_reads_, 0u) << "data loss must be observable";
  EXPECT_EQ(client.completed(), client.sent());
}

TEST(NicFailover, PcieFlapParksTrafficWithoutWatchdogTrip) {
  // A short flap heals before the watchdog's miss budget expires: the
  // channel parks and retransmits, nothing is evacuated, nothing is lost.
  Cluster cluster;
  ServerSpec spec = watchdog_spec();
  spec.ipipe.watchdog_miss_limit = 40;  // miss budget outlives the flap
  auto& server = cluster.add_server(spec);
  auto chaos = cluster.make_chaos();

  auto* actor = new StatefulEcho(16 * 1024);
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  netsim::FaultPlan plan;
  plan.pcie_flap(0, msec(10), msec(2));
  chaos->execute(plan);

  auto& client = cluster.add_client(10.0, echo_to(0, id));
  client.enable_retries({.timeout = msec(2), .max_retries = 50,
                         .backoff = 1.5, .cap = msec(10)});
  client.start_closed_loop(2, msec(40));
  cluster.run_until(msec(60));

  auto& rt = server.runtime();
  EXPECT_EQ(rt.watchdog_trips(), 0u);
  EXPECT_EQ(rt.evacuations(), 0u);
  EXPECT_EQ(client.completed(), client.sent());
  EXPECT_EQ(actor->bad_reads_, 0u);
  EXPECT_NE(chaos->event_log_text().find("pcie-flap"), std::string::npos);
}

TEST(NicFailover, LongPcieFlapTripsWatchdogThenReoffloads) {
  // The NIC is alive but unreachable: pongs cannot cross the dead link,
  // so the host must declare it failed anyway (fail-silent model), serve
  // from the host, and re-offload when the first pong crosses the healed
  // link.
  Cluster cluster;
  auto& server = cluster.add_server(watchdog_spec());
  auto chaos = cluster.make_chaos();

  auto* actor = new StatefulEcho(16 * 1024);
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  netsim::FaultPlan plan;
  plan.pcie_flap(0, msec(10), msec(15));
  chaos->execute(plan);

  auto& client = cluster.add_client(10.0, echo_to(0, id));
  client.enable_retries({.timeout = msec(2), .max_retries = 50,
                         .backoff = 1.5, .cap = msec(10)});
  client.start_closed_loop(2, msec(60));
  cluster.run_until(msec(100));

  auto& rt = server.runtime();
  EXPECT_GE(rt.watchdog_trips(), 1u);
  EXPECT_GE(rt.evacuations(), 1u);
  EXPECT_GE(rt.reoffloads(), 1u);
  const auto* control = rt.control(id);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->mig, MigState::kStable);
  EXPECT_EQ(control->loc, ActorLoc::kNic);
  EXPECT_EQ(client.completed(), client.sent());
  EXPECT_EQ(actor->bad_reads_, 0u);
}

// ----------------------------------------------- accelerator-bank faults --

/// Echoes after running its payload through a NIC accelerator engine.
class AccelEcho final : public Actor {
 public:
  AccelEcho() : Actor("accel-echo") {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.accel(nic::AccelKind::kCrc, req.frame_size, 1);
    ++served_;
    env.reply(req, kEchoRep, {});
  }
  std::uint64_t served_ = 0;
};

TEST(NicFailover, AccelBankFailureFallsBackToSoftware) {
  Cluster cluster;
  auto& server = cluster.add_server(ServerSpec{});
  auto chaos = cluster.make_chaos();

  auto* actor = new AccelEcho();
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  netsim::FaultPlan plan;
  plan.accel_fail(0, static_cast<std::uint32_t>(nic::AccelKind::kCrc),
                  msec(5), msec(10));
  chaos->execute(plan);

  auto& client = cluster.add_client(10.0, echo_to(0, id));
  client.start_closed_loop(2, msec(30));
  cluster.run_until(msec(40));

  auto& rt = server.runtime();
  EXPECT_GT(rt.accel_fallbacks(), 0u) << "software path was exercised";
  // Correctness is non-negotiable: every request still completed.
  EXPECT_EQ(client.completed(), client.sent());
  EXPECT_FALSE(rt.nic().accel().any_failed()) << "bank healed after window";
  EXPECT_NE(chaos->event_log_text().find("accel-fail"), std::string::npos);
}

// -------------------------------------------- restart-episode decay (S2) --

/// Overruns the watchdog budget every `period`-th request, with long
/// healthy stretches in between — the repeat-offender pattern stretched
/// out over virtual hours of good behavior.
class PeriodicOffender final : public Actor {
 public:
  explicit PeriodicOffender(std::uint64_t period)
      : Actor("periodic-offender"), period_(period) {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    if (++seen_ % period_ == 0) {
      env.charge(msec(5));  // blows through the watchdog limit
      return;
    }
    env.charge(usec(2));
    ++served_;
    env.reply(req, kEchoRep, {});
  }
  std::uint64_t seen_ = 0;
  std::uint64_t served_ = 0;

 private:
  std::uint64_t period_;
};

ServerSpec supervision_spec(Ns decay) {
  ServerSpec spec;
  spec.ipipe.watchdog_limit = usec(500);
  spec.ipipe.supervise = true;
  spec.ipipe.supervise_restart_delay = usec(200);
  spec.ipipe.supervise_quarantine_after = 2;
  spec.ipipe.supervise_restart_decay = decay;
  return spec;
}

std::uint64_t run_offender(Cluster& cluster, ServerSpec spec) {
  auto& server = cluster.add_server(spec);
  const ActorId id = server.runtime().register_actor(
      std::make_unique<PeriodicOffender>(4000));
  auto& client = cluster.add_client(10.0, echo_to(0, id));
  client.enable_retries({.timeout = msec(2), .max_retries = 100,
                         .backoff = 1.2, .cap = msec(5)});
  client.start_closed_loop(4, msec(120));
  cluster.run_until(msec(150));
  return id;
}

TEST(Supervision, RestartEpisodesDecayAfterHealthyInterval) {
  // Without decay: crash episodes separated by milliseconds of healthy
  // service still accumulate, and the third one quarantines the actor
  // for good.
  Cluster legacy;
  run_offender(legacy, supervision_spec(0));
  EXPECT_EQ(legacy.server(0).runtime().actors_quarantined(), 1u)
      << "control run must reproduce the legacy quarantine";

  // With decay: each healthy stretch longer than the decay interval
  // resets the episode counter, so the long-lived actor is never one
  // fault away from permanent quarantine.
  Cluster forgiving;
  const ActorId id = run_offender(forgiving, supervision_spec(msec(3)));
  auto& rt = forgiving.server(0).runtime();
  EXPECT_GE(rt.restart_decays(), 1u);
  EXPECT_EQ(rt.actors_quarantined(), 0u);
  EXPECT_GE(rt.actor_restarts(), 3u)
      << "decay must have forgiven at least one full budget";
  const auto* control = rt.control(id);
  ASSERT_NE(control, nullptr);
  EXPECT_FALSE(control->quarantined);
}

// ------------------------------------- faults mid-migration (S3, Fig.18) --

/// Which device dies while the 4-phase migration is in flight.
enum class FaultMode { kNicCrash, kNodeCrash };

struct MigFaultCase {
  MigState trigger;  ///< fire the fault when the actor reaches this state
  FaultMode mode;
  const char* name;
};

std::string mig_case_name(const ::testing::TestParamInfo<MigFaultCase>& info) {
  return info.param.name;
}

class MigrationFault : public ::testing::TestWithParam<MigFaultCase> {};

TEST_P(MigrationFault, CompletesOrRollsBackWithoutLosingState) {
  const MigFaultCase param = GetParam();

  Cluster cluster;
  ServerSpec spec = watchdog_spec();
  spec.ipipe.mean_thresh = sec(1);  // suppress autonomous migrations
  spec.ipipe.tail_thresh = sec(1);
  auto& server = cluster.add_server(spec);

  auto* actor = new StatefulEcho(128 * 1024);
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  auto& client = cluster.add_client(10.0, echo_to(0, id));
  client.enable_retries({.timeout = msec(2), .max_retries = 80,
                         .backoff = 1.5, .cap = msec(10)});
  client.start_closed_loop(2, msec(60));

  auto& sim = cluster.sim();
  auto& rt = server.runtime();

  // Kick off a manual NIC->host migration once traffic is flowing.
  sim.schedule(msec(5), [&] {
    EXPECT_TRUE(rt.start_migration(id, ActorLoc::kHost));
  });

  // Poll the migration state machine at fine grain and fire the fault the
  // instant the target phase is observed.
  bool fired = false;
  bool missed = false;
  std::function<void()> poll = [&] {
    const auto* ac = rt.control(id);
    if (ac == nullptr) return;
    if (!fired && ac->mig == param.trigger) {
      fired = true;
      if (param.mode == FaultMode::kNicCrash) {
        rt.nic_crash();
        sim.schedule(msec(8), [&] { rt.nic_restore(); });
      } else {
        server.crash();
        sim.schedule(msec(8), [&] { server.restore(); });
      }
      return;
    }
    if (!fired && ac->mig == MigState::kStable && ac->migrations > 0) {
      missed = true;  // migration finished before the phase was seen
      return;
    }
    sim.schedule(100, poll);
  };
  sim.schedule(msec(5) + 100, poll);

  cluster.run_until(msec(100));

  ASSERT_TRUE(fired) << "fault never injected";
  EXPECT_FALSE(missed);
  const auto* control = rt.control(id);
  ASSERT_NE(control, nullptr);
  // The migration either committed or rolled back — never wedged.
  EXPECT_EQ(control->mig, MigState::kStable);
  EXPECT_FALSE(control->killed);
  EXPECT_TRUE(control->mig_buffer.empty())
      << "buffered requests must be re-delivered, not stranded";
  // The actor kept serving after recovery and its DMO pattern is intact
  // (a node crash wipes and re-inits; a NIC crash replays the mirror).
  EXPECT_GT(actor->served_, 0u);
  EXPECT_EQ(actor->bad_reads_, 0u);
  // Nothing acked was lost: the client's retries bridge every window.
  EXPECT_EQ(client.completed(), client.sent());
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, MigrationFault,
    ::testing::Values(
        MigFaultCase{MigState::kPrepare, FaultMode::kNicCrash,
                     "NicCrashDuringPrepare"},
        MigFaultCase{MigState::kReady, FaultMode::kNicCrash,
                     "NicCrashDuringTransfer"},
        MigFaultCase{MigState::kGone, FaultMode::kNicCrash,
                     "NicCrashDuringHandoff"},
        MigFaultCase{MigState::kClean, FaultMode::kNicCrash,
                     "NicCrashDuringForwarding"},
        MigFaultCase{MigState::kPrepare, FaultMode::kNodeCrash,
                     "NodeCrashDuringPrepare"},
        MigFaultCase{MigState::kReady, FaultMode::kNodeCrash,
                     "NodeCrashDuringTransfer"},
        MigFaultCase{MigState::kGone, FaultMode::kNodeCrash,
                     "NodeCrashDuringHandoff"},
        MigFaultCase{MigState::kClean, FaultMode::kNodeCrash,
                     "NodeCrashDuringForwarding"}),
    mig_case_name);

}  // namespace
}  // namespace ipipe
