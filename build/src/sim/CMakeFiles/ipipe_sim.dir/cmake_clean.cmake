file(REMOVE_RECURSE
  "CMakeFiles/ipipe_sim.dir/simulation.cc.o"
  "CMakeFiles/ipipe_sim.dir/simulation.cc.o.d"
  "libipipe_sim.a"
  "libipipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
