// Multi-tenancy: SR-IOV-style virtual functions over one iPipe NIC.
//
// A tenant is the unit of isolation a cloud operator leases: a virtual
// function with its own ingress queue pair (a weighted traffic class in
// the hardware TM, fed through a MAC/flow filter and an ingress
// policer), a group of actors whose DMO footprint and channel bandwidth
// are capped, and a PF<->VF control mailbox.  The runtime enforces the
// caps at the three shared chokepoints — TM admission, send_or_queue(),
// and DMO allocation — so an aggressor tenant saturates only its own
// budget and the damage stays attributable in its counters.
//
// Escalation ladder: repeated violations (policer/queue/quota hits)
// within a window first *throttle* the tenant — its DRR actors stop
// being scheduled and its ingress class drops at line rate until the
// penalty expires — and persistent offenders are *quarantined* as a
// unit (every member actor killed with no supervised restart).  This
// deliberately reuses the §3.4 isolation machinery: a tenant over
// budget is handled like an actor that trapped, scaled up to the VF.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.h"
#include "netsim/packet.h"

namespace ipipe {

/// Tenant handle; doubles as the TM traffic-class index.  0 is the
/// physical function (untenanted traffic, default class).
using TenantId = std::uint16_t;
constexpr TenantId kNoTenant = 0;

struct TenantConfig {
  std::string name;

  /// DRR weight: scales every member actor's quantum, so a weight-2
  /// tenant gets twice the DRR core time of a weight-1 tenant under
  /// contention.  Also the tenant's TM traffic-class weight.
  double drr_weight = 1.0;

  /// Ingress policer (leaky bucket over frame bytes). 0 = unlimited.
  double ingress_rate_bps = 0.0;
  std::uint64_t ingress_burst_bytes = 64 * KiB;
  /// Depth of the tenant's TM traffic class (its RX queue pair).
  std::size_t rx_queue_cap = 1024;

  /// Combined DMO cap across the tenant's actors (both sides). 0 = none.
  std::uint64_t dmo_cap_bytes = 0;

  /// PCIe message-channel budget (token bucket over wire bytes); a
  /// tenant over budget pays a sender-side stall per message instead of
  /// stealing ring capacity from neighbors.  0 = unlimited.
  double chan_rate_bps = 0.0;
  std::uint64_t chan_burst_bytes = 256 * KiB;

  /// PF<->VF control mailbox: pending-request cap and how many requests
  /// the management core serves per tenant per scan (spam containment).
  std::size_t mailbox_cap = 32;
  std::size_t mailbox_batch = 4;

  /// Violations (policer drop / queue drop / quota denial / mailbox
  /// overflow / channel overdraft) within `throttle_window` before the
  /// tenant is throttled; each repeat doubles the penalty.  0 = never.
  std::uint64_t throttle_threshold = 0;
  Ns throttle_window = msec(1);
  /// Throttle episodes before the tenant is quarantined. 0 = never.
  std::uint32_t quarantine_after = 0;

  /// Ingress source filter (the VF's MAC/flow filter): when non-empty,
  /// only frames from these nodes reach the tenant's queue.
  std::vector<netsim::NodeId> allowed_src;
};

/// PF<->VF control mailbox verbs.
enum class VfMboxOp : std::uint8_t {
  kPing,            ///< liveness probe; replies 1.0
  kQueryStats,      ///< replies admitted_packets
  kSetWeight,       ///< arg = new drr/TM weight (clamped to [0.1, 16])
  kSetIngressRate,  ///< arg = new ingress_rate_bps (>= 0)
};

struct VfMboxMsg {
  VfMboxOp op = VfMboxOp::kPing;
  double arg = 0.0;
};

struct VfMboxReply {
  VfMboxOp op = VfMboxOp::kPing;
  double value = 0.0;
  Ns at = 0;  ///< virtual time the management core served the request
};

/// Per-tenant accounting: every enforcement point records the damage it
/// absorbed here, so a victim can prove which tenant caused its loss.
struct TenantStats {
  std::uint64_t admitted_packets = 0;
  std::uint64_t admitted_bytes = 0;
  std::uint64_t policer_drops = 0;   ///< ingress rate limit exceeded
  std::uint64_t queue_drops = 0;     ///< tenant RX class tail-dropped
  std::uint64_t filter_drops = 0;    ///< MAC/flow filter or quarantine
  std::uint64_t throttle_drops = 0;  ///< dropped while throttled
  std::uint64_t chan_bytes = 0;
  std::uint64_t chan_throttle_stalls = 0;
  Ns chan_stall_ns = 0;
  std::uint64_t dmo_denied = 0;  ///< kQuotaExceeded allocations
  std::uint64_t mbox_msgs = 0;
  std::uint64_t mbox_drops = 0;  ///< mailbox over cap
  std::uint64_t mbox_processed = 0;
  std::uint64_t throttles = 0;  ///< throttle episodes entered
  Ns throttled_ns = 0;          ///< total penalty time served
};

/// Runtime-side state of one tenant (the VF control block).
struct TenantState {
  TenantId id = kNoTenant;
  TenantConfig cfg;
  TenantStats stats;

  std::vector<netsim::ActorId> members;  ///< registration order

  // Ingress policer bucket (bytes).
  double ingress_tokens = 0.0;
  Ns ingress_refill_at = 0;

  // Channel budget bucket (bytes).
  double chan_tokens = 0.0;
  Ns chan_refill_at = 0;

  // Violation window + escalation ladder.
  std::uint64_t violations_window = 0;
  Ns window_started = 0;
  Ns throttled_until = 0;
  bool unthrottle_pending = false;  ///< wake DRR cores when penalty lapses
  std::uint32_t throttle_count = 0;
  bool quarantined = false;

  /// TM class_drops() watermark at the last management scan (the delta
  /// folds into stats.queue_drops).
  std::uint64_t tm_drops_seen = 0;

  // PF<->VF mailbox.
  std::deque<VfMboxMsg> mbox;
  std::deque<VfMboxReply> mbox_replies;

  explicit TenantState(TenantId tid, TenantConfig config);

  [[nodiscard]] bool throttled(Ns now) const noexcept {
    return now < throttled_until;
  }

  /// Ingress policer: admit `bytes` at `now`?  (No side effects beyond
  /// bucket state; the caller records the drop and the violation.)
  [[nodiscard]] bool ingress_admit(std::uint64_t bytes, Ns now);

  /// Charge `bytes` of PCIe channel traffic; returns the sender-side
  /// stall to add when the tenant is over its channel budget (0 when
  /// within budget or unlimited).
  [[nodiscard]] Ns chan_charge(std::uint64_t bytes, Ns now);

  /// Record one violation at `now` (window bookkeeping only; the
  /// management core decides throttling from `violations_window`).
  void note_violation(Ns now);
};

}  // namespace ipipe
