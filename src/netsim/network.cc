#include "netsim/network.h"

#include <cassert>

#include "common/logging.h"

namespace ipipe::netsim {

void Network::attach(NodeId node, Endpoint& ep, double gbps) {
  auto& port = ports_[node];
  port.ep = &ep;
  port.gbps = gbps;
}

void Network::detach(NodeId node) { ports_.erase(node); }

void Network::send(PacketPtr pkt) {
  assert(pkt != nullptr);
  ++frames_sent_;

  const auto src_it = ports_.find(pkt->src);
  const auto dst_it = ports_.find(pkt->dst);
  if (src_it == ports_.end() || dst_it == ports_.end()) {
    ++frames_dropped_;
    LOG_DEBUG("drop: unknown endpoint %u -> %u", pkt->src, pkt->dst);
    return;
  }

  if (faults_.drop_prob > 0.0 && rng_.bernoulli(faults_.drop_prob)) {
    ++frames_dropped_;
    return;
  }

  const bool duplicate =
      faults_.dup_prob > 0.0 && rng_.bernoulli(faults_.dup_prob);

  PortState& src_port = src_it->second;
  PortState& dst_port = dst_it->second;
  const Ns now = sim_.now();

  const Ns tx_start = std::max(now, src_port.tx_busy_until);
  const Ns tx_done = tx_start + wire_time(pkt->frame_size, src_port.gbps);
  src_port.tx_busy_until = tx_done;

  const Ns at_switch = tx_done + switch_latency_;
  const Ns rx_start = std::max(at_switch, dst_port.rx_busy_until);
  const Ns rx_done = rx_start + wire_time(pkt->frame_size, dst_port.gbps);
  dst_port.rx_busy_until = rx_done;

  Ns jitter = 0;
  if (faults_.reorder_jitter > 0) {
    jitter = rng_.uniform_u64(faults_.reorder_jitter + 1);
  }

  if (duplicate) {
    deliver(pool_.make(*pkt), rx_done - now + jitter);
  }
  deliver(std::move(pkt), rx_done - now + jitter);
}

void Network::deliver(PacketPtr pkt, Ns delay) {
  // InlineFn takes move-only captures, so the frame rides inside the
  // event itself — no allocation, no shared_ptr shim.
  sim_.schedule(delay, [this, p = std::move(pkt)]() mutable {
    const auto it = ports_.find(p->dst);
    if (it == ports_.end() || it->second.ep == nullptr) {
      ++frames_dropped_;
      return;
    }
    ++frames_delivered_;
    p->nic_arrival = sim_.now();
    it->second.ep->receive(std::move(p));
  });
}

}  // namespace ipipe::netsim
