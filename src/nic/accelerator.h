// Domain-specific accelerator bank (Table 3, right half).
//
// Timing model: a batch-k invocation over items of `bytes` each costs
//   invoke_ns + k * per_item_ns * (bytes / 1024)
// i.e. a fixed engine-invocation overhead amortized over the batch plus a
// per-byte streaming cost.  The (invoke, per_item) pairs are fitted from
// the paper's measured per-request latencies at batch sizes 1 and 32 with
// 1KB requests; the fit reproduces the paper's batch-8 column within
// ~0.2µs for every engine.
//
// Functional behaviour for the engines the applications rely on (CRC,
// MD5, SHA-1, AES) is delegated to the real `crypto::` implementations by
// callers; this class only accounts for time and usage statistics.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace ipipe::nic {

enum class AccelKind : std::uint8_t {
  kCrc = 0,
  kMd5,
  kSha1,
  kTripleDes,
  kAes,
  kKasumi,
  kSms4,
  kSnow3g,
  kFau,      // fetch-and-add / atomic unit
  kZip,      // compression
  kDfa,      // pattern matching (deterministic finite automaton)
  kCount,
};

constexpr std::size_t kNumAccelKinds = static_cast<std::size_t>(AccelKind::kCount);

[[nodiscard]] std::string_view accel_name(AccelKind kind) noexcept;

struct AccelTiming {
  double invoke_ns;    ///< fixed invocation overhead
  double per_item_ns;  ///< per-item cost for a 1KB item
  bool batchable;      ///< ZIP is not batchable in the paper's table
};

/// Fitted Table-3 timings for the LiquidIOII CN2350 engines.
[[nodiscard]] const std::array<AccelTiming, kNumAccelKinds>& liquidio_accel_timings() noexcept;

class AcceleratorBank {
 public:
  AcceleratorBank() : timings_(liquidio_accel_timings()) {}
  explicit AcceleratorBank(std::array<AccelTiming, kNumAccelKinds> timings)
      : timings_(timings) {}

  /// Core-blocking cost of processing a batch of `batch` items of `bytes`
  /// each on engine `kind` (the NIC core waits for completion, §2.2.3).
  [[nodiscard]] Ns batch_cost(AccelKind kind, std::uint32_t bytes,
                              std::uint32_t batch) const noexcept;

  /// Per-item amortized cost (what Table 3 reports).
  [[nodiscard]] double per_item_us(AccelKind kind, std::uint32_t bytes,
                                   std::uint32_t batch) const noexcept;

  void record_use(AccelKind kind, std::uint64_t items) noexcept {
    uses_[static_cast<std::size_t>(kind)] += items;
  }
  [[nodiscard]] std::uint64_t uses(AccelKind kind) const noexcept {
    return uses_[static_cast<std::size_t>(kind)];
  }

  /// Chaos hook: mark one engine bank dead (accel-fail) or recovered.
  /// A failed bank still computes the right answer — callers fall back
  /// to a software path on the NIC cores — it just stops being cheap.
  void set_failed(AccelKind kind, bool failed) noexcept {
    failed_[static_cast<std::size_t>(kind)] = failed;
  }
  [[nodiscard]] bool failed(AccelKind kind) const noexcept {
    return failed_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] bool any_failed() const noexcept {
    for (const bool f : failed_) {
      if (f) return true;
    }
    return false;
  }
  void clear_failures() noexcept { failed_.fill(false); }

 private:
  std::array<AccelTiming, kNumAccelKinds> timings_;
  std::array<std::uint64_t, kNumAccelKinds> uses_{};
  std::array<bool, kNumAccelKinds> failed_{};
};

}  // namespace ipipe::nic
