# Empty compiler generated dependencies file for ipipe_common.
# This may be replaced when dependencies are built.
