#include "ipipe/env.h"

#include <algorithm>

namespace ipipe {

void EnvBase::charge_dmo(std::uint64_t bytes) {
  const auto& cfg = rt_.config();
  charge(cfg.dmo_translate_ns);
  const std::uint64_t ws = std::max<std::uint64_t>(working_set(), 64);
  mem(ws, 1);
  if (bytes > 64) stream(ws, bytes);
}

bool EnvBase::check(DmoStatus status) {
  switch (status) {
    case DmoStatus::kOk:
      return true;
    case DmoStatus::kWrongOwner:
    case DmoStatus::kOutOfBounds:
      // Isolation trap (§3.4): the runtime deregisters the offender.
      rt_.kill_actor(ac_.id, /*isolation_trap=*/true);
      return false;
    case DmoStatus::kWrongSide:
      // Not a fault: the object lives across PCIe.  charge_remote already
      // billed the DMA round trip and the access was retried unchecked.
      return false;
    default:
      return false;
  }
}

void EnvBase::charge_remote(std::uint64_t bytes, bool is_write) {
  // Remote DMO access: a blocking DMA to the far side of PCIe.  Before
  // kWrongSide was enforced, these accesses were billed at *local* memory
  // cost, flattering actors with split or stale residency.
  const auto& dma = rt_.nic().dma();
  const auto sz = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(bytes, 0xFFFFFFFFULL));
  charge(is_write ? dma.blocking_write_latency(sz)
                  : dma.blocking_read_latency(sz));
}

ObjId EnvBase::dmo_alloc(std::uint32_t size) {
  charge(rt_.config().dmo_translate_ns * 4);  // allocator + table insert
  ObjId id = kInvalidObj;
  const auto status = rt_.objects().alloc(ac_.id, size, side(), id);
  if (status == DmoStatus::kQuotaExceeded) {
    // Policy denial, not a trap: the actor sees a failed alloc (like
    // kNoMemory), and the tenant's ledger records who was denied.
    rt_.note_dmo_denied(ac_.id);
  }
  return status == DmoStatus::kOk ? id : kInvalidObj;
}

bool EnvBase::dmo_free(ObjId id) {
  charge(rt_.config().dmo_translate_ns * 2);
  return check(rt_.objects().free(ac_.id, id));
}

bool EnvBase::dmo_read(ObjId id, std::uint32_t off,
                       std::span<std::uint8_t> out) {
  charge_dmo(out.size());
  const auto status = rt_.objects().read(ac_.id, id, off, out, side());
  if (status == DmoStatus::kWrongSide) {
    charge_remote(out.size(), /*is_write=*/false);
    return check(rt_.objects().read(ac_.id, id, off, out));
  }
  return check(status);
}

bool EnvBase::dmo_write(ObjId id, std::uint32_t off,
                        std::span<const std::uint8_t> in) {
  charge_dmo(in.size());
  const auto status = rt_.objects().write(ac_.id, id, off, in, side());
  if (status == DmoStatus::kWrongSide) {
    charge_remote(in.size(), /*is_write=*/true);
    return check(rt_.objects().write(ac_.id, id, off, in));
  }
  return check(status);
}

bool EnvBase::dmo_memset(ObjId id, std::uint8_t value, std::uint32_t off,
                         std::uint32_t len) {
  charge_dmo(len);
  const auto status = rt_.objects().memset(ac_.id, id, value, off, len, side());
  if (status == DmoStatus::kWrongSide) {
    charge_remote(len, /*is_write=*/true);
    return check(rt_.objects().memset(ac_.id, id, value, off, len));
  }
  return check(status);
}

std::uint32_t EnvBase::dmo_size(ObjId id) const {
  const DmoRecord* rec = rt_.objects().find(id);
  return rec != nullptr && rec->owner == ac_.id ? rec->size : 0;
}

std::uint64_t EnvBase::working_set() const {
  return rt_.objects().working_set(ac_.id);
}

netsim::PacketPtr EnvBase::make_packet(NodeId dst, ActorId dst_actor,
                                       std::uint16_t type,
                                       std::vector<std::uint8_t> payload,
                                       std::uint32_t frame_size) {
  auto pkt = rt_.pool().make();
  pkt->src = node();
  pkt->dst = dst;
  pkt->dst_actor = dst_actor;
  pkt->src_actor = ac_.id;
  pkt->msg_type = type;
  pkt->flow = dst_actor;
  pkt->created_at = now();
  pkt->frame_size = frame_size != 0
                        ? frame_size
                        : netsim::frame_for_payload(payload.size());
  pkt->payload = std::move(payload);
  return pkt;
}

// ---------------------------------------------------------------- NicEnv --

void NicEnv::compute(double units) {
  const auto& nic_cfg = rt_.nic().config();
  ctx_.charge(static_cast<Ns>(units / (rt_.config().nic_ipc * nic_cfg.freq_ghz)));
}

void NicEnv::accel(nic::AccelKind kind, std::uint32_t bytes,
                   std::uint32_t batch) {
  nic::AcceleratorBank& bank = rt_.nic().accel();
  if (!bank.failed(kind)) {
    ctx_.accel(kind, bytes, batch);
    return;
  }
  // Failed engine (chaos accel-fail): the computation still happens —
  // correctness is non-negotiable — but on a software path run by this
  // wimpy NIC core: the host software slowdown scaled up by the hosts'
  // IPC advantage, with no engine invocation to amortize.
  const Ns hw_cost = bank.batch_cost(kind, bytes, batch);
  const double slow =
      rt_.config().host_accel_slowdown[static_cast<std::size_t>(kind)] *
      (rt_.config().host_ipc / rt_.config().nic_ipc);
  ctx_.charge(static_cast<Ns>(static_cast<double>(hw_cost) * slow));
  rt_.note_accel_fallback();
}

void NicEnv::send(NodeId dst_node, ActorId dst_actor, std::uint16_t type,
                  std::vector<std::uint8_t> payload, std::uint32_t frame_size) {
  auto pkt = make_packet(dst_node, dst_actor, type, std::move(payload),
                         frame_size);
  ctx_.charge_nstack(pkt->frame_size);
  ctx_.tx(std::move(pkt));
}

void NicEnv::reply(const netsim::Packet& req, std::uint16_t type,
                   std::vector<std::uint8_t> payload, std::uint32_t frame_size) {
  auto pkt = make_packet(req.src, req.src_actor, type, std::move(payload),
                         frame_size);
  pkt->request_id = req.request_id;
  pkt->created_at = req.created_at;
  ctx_.charge_nstack(pkt->frame_size);
  ctx_.tx(std::move(pkt));
}

void NicEnv::local_send(ActorId dst_actor, std::uint16_t type,
                        std::vector<std::uint8_t> payload) {
  auto pkt = make_packet(node(), dst_actor, type, std::move(payload), 0);
  // Same-side delivery is a cheap queue insert; crossing PCIe pays the
  // full per-message channel handling cost (the send itself happens in
  // deliver_local once this slice retires).
  const auto* dst = rt_.control(dst_actor);
  const bool crosses = dst != nullptr && dst->loc == ActorLoc::kHost;
  charge(crosses ? rt_.config().channel_handling_ns
                 : rt_.config().channel_handling_ns / 2);
  Runtime& rt = rt_;
  ctx_.defer([&rt, p = std::move(pkt)]() mutable {
    const ActorId dst = p->dst_actor;
    rt.deliver_local(dst, std::move(p), MemSide::kNic);
  });
}

void NicEnv::forward(ActorId dst_actor, netsim::PacketPtr pkt) {
  // The packet keeps every field the sender saw (flow, request_id,
  // created_at, payload) — only the destination actor changes.  Cost
  // model matches local_send: a queue insert same-side, the full
  // channel-handling tax when the receiver lives across PCIe.
  pkt->dst = node();
  pkt->dst_actor = dst_actor;
  pkt->local_hop = true;
  const auto* dst = rt_.control(dst_actor);
  const bool crosses = dst != nullptr && dst->loc == ActorLoc::kHost;
  charge(crosses ? rt_.config().channel_handling_ns
                 : rt_.config().channel_handling_ns / 2);
  Runtime& rt = rt_;
  ctx_.defer([&rt, p = std::move(pkt)]() mutable {
    const ActorId dst = p->dst_actor;
    rt.deliver_local(dst, std::move(p), MemSide::kNic);
  });
}

// --------------------------------------------------------------- HostEnv --

void HostEnv::compute(double units) {
  const auto& host_cfg = rt_.host().config();
  ctx_.charge(
      static_cast<Ns>(units / (rt_.config().host_ipc * host_cfg.freq_ghz)));
}

void HostEnv::accel(nic::AccelKind kind, std::uint32_t bytes,
                    std::uint32_t batch) {
  // No engine on the host: software fallback, slower by the per-engine
  // factor from §2.2.3 (but no invocation overhead amortization games).
  const Ns hw_cost = rt_.nic().accel().batch_cost(kind, bytes, batch);
  const double slow =
      rt_.config().host_accel_slowdown[static_cast<std::size_t>(kind)];
  ctx_.charge(static_cast<Ns>(static_cast<double>(hw_cost) * slow));
}

void HostEnv::send(NodeId dst_node, ActorId dst_actor, std::uint16_t type,
                   std::vector<std::uint8_t> payload, std::uint32_t frame_size) {
  auto pkt = make_packet(dst_node, dst_actor, type, std::move(payload),
                         frame_size);
  ctx_.charge_tx(pkt->frame_size);
  ctx_.tx(std::move(pkt));
}

void HostEnv::reply(const netsim::Packet& req, std::uint16_t type,
                    std::vector<std::uint8_t> payload,
                    std::uint32_t frame_size) {
  auto pkt = make_packet(req.src, req.src_actor, type, std::move(payload),
                         frame_size);
  pkt->request_id = req.request_id;
  pkt->created_at = req.created_at;
  ctx_.charge_tx(pkt->frame_size);
  ctx_.tx(std::move(pkt));
}

void HostEnv::local_send(ActorId dst_actor, std::uint16_t type,
                         std::vector<std::uint8_t> payload) {
  auto pkt = make_packet(node(), dst_actor, type, std::move(payload), 0);
  const auto* dst = rt_.control(dst_actor);
  const bool crosses = dst != nullptr && dst->loc == ActorLoc::kNic;
  charge(crosses ? rt_.config().channel_handling_ns
                 : rt_.config().channel_handling_ns / 2);
  Runtime& rt = rt_;
  ctx_.defer([&rt, p = std::move(pkt)]() mutable {
    const ActorId dst = p->dst_actor;
    rt.deliver_local(dst, std::move(p), MemSide::kHost);
  });
}

void HostEnv::forward(ActorId dst_actor, netsim::PacketPtr pkt) {
  pkt->dst = node();
  pkt->dst_actor = dst_actor;
  pkt->local_hop = true;
  const auto* dst = rt_.control(dst_actor);
  const bool crosses = dst != nullptr && dst->loc == ActorLoc::kNic;
  charge(crosses ? rt_.config().channel_handling_ns
                 : rt_.config().channel_handling_ns / 2);
  Runtime& rt = rt_;
  ctx_.defer([&rt, p = std::move(pkt)]() mutable {
    const ActorId dst = p->dst_actor;
    rt.deliver_local(dst, std::move(p), MemSide::kHost);
  });
}

}  // namespace ipipe
