#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace ipipe {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64Bounded) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(32.0);
  EXPECT_NEAR(sum / n, 32.0, 0.5);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Zipf, SkewFavorsHeadKeys) {
  Rng rng(17);
  ZipfDist zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  // Rank 0 should dominate rank 99 by roughly (100/1)^0.99.
  EXPECT_GT(counts[0], counts[99] * 20);
  // Head key near its theoretical share 1/H_0.99(1000) ~= 12.3%.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.123, 0.02);
}

TEST(Zipf, UniformWhenThetaZero) {
  Rng rng(19);
  ZipfDist zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf(rng)];
  for (const int c : counts) EXPECT_NEAR(c, 10'000, 600);
}

TEST(Bimodal, MeanMatches) {
  Rng rng(23);
  BimodalDist dist(35.0, 60.0, 0.5);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += dist(rng);
  EXPECT_NEAR(sum / n, dist.mean(), 0.3);
  EXPECT_DOUBLE_EQ(dist.mean(), 47.5);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma ewma(0.2);
  for (int i = 0; i < 100; ++i) ewma.add(42.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 42.0);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma ewma(0.1);
  EXPECT_FALSE(ewma.seeded());
  ewma.add(7.0);
  EXPECT_TRUE(ewma.seeded());
  EXPECT_DOUBLE_EQ(ewma.value(), 7.0);
}

TEST(EwmaMeanStd, TailApproximatesP99ForNormal) {
  Rng rng(31);
  EwmaMeanStd stats(0.02);
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(100.0, 10.0));
  // µ+3σ for N(100,10) = 130; P99 = 123.3.  The estimator should land in
  // that neighbourhood.
  EXPECT_NEAR(stats.mean(), 100.0, 3.0);
  EXPECT_NEAR(stats.tail(), 130.0, 8.0);
}

TEST(RunningStats, ExactSmallCase) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(LatencyHistogram, PercentilesOnUniformRamp) {
  LatencyHistogram hist;
  for (Ns v = 1; v <= 10'000; ++v) hist.add(v);
  EXPECT_EQ(hist.count(), 10'000u);
  EXPECT_NEAR(static_cast<double>(hist.p50()), 5000.0, 200.0);
  EXPECT_NEAR(static_cast<double>(hist.p99()), 9900.0, 300.0);
  EXPECT_EQ(hist.max(), 10'000u);
  EXPECT_NEAR(hist.mean_ns(), 5000.5, 1.0);
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (Ns v = 1; v <= 100; ++v) a.add(v * 10);
  for (Ns v = 1; v <= 100; ++v) b.add(v * 1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_GE(a.percentile(75.0), 250u);
}

TEST(LatencyHistogram, PercentileOfEmptyIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.p99(), 0u);
  EXPECT_EQ(hist.count(), 0u);
}

}  // namespace
}  // namespace ipipe
