// Parallel deterministic sweep runner for the bench binaries.
//
// A bench "sweep" is a list of independent sim points (load levels, window
// sizes, scheduler variants).  Each point builds its own Cluster /
// Simulation / Rng from scratch, so points share no mutable state and can
// run on a thread pool without changing any simulated result.  The runner
// computes all points (in parallel under --jobs=N), collects results
// ordered by point index, and leaves printing to the caller — stdout is
// byte-identical to the sequential run by construction.
//
// It also records per-point perf (events executed, simulated seconds, wall
// seconds) and can emit a machine-readable JSON baseline via
// --bench-json=<path>, so regressions across PRs are tracked by CI rather
// than by eye.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "testbed/cluster.h"

namespace ipipe::bench {

/// Perf record for one sim point.  The point function fills label/events/
/// sim_seconds (see `fill_perf`); the runner stamps wall_seconds.
struct PointPerf {
  std::string label;
  std::uint64_t events = 0;   ///< sim events executed by this point
  double sim_seconds = 0.0;   ///< simulated time covered
  double wall_seconds = 0.0;  ///< wall-clock time, stamped by the runner
};

/// Convenience: record a finished point's cluster into its perf slot
/// (events + simulated seconds; the label is the caller's).
void fill_perf(PointPerf& perf, const testbed::Cluster& cluster);

struct SweepOpts {
  unsigned jobs = 1;          ///< --jobs=N worker threads (1 = sequential)
  unsigned sim_threads = 1;   ///< --sim-threads=N engine workers per point
  std::string bench_json;     ///< --bench-json=<path>, empty = no emission
};

/// Scan argv for --jobs=N / --sim-threads=N / --bench-json=<path>.
/// Unknown arguments are ignored so benches keep their own flag handling.
/// `--help` prints the shared harness flags and exits.
///
/// Both parallelism axes are deterministic (sweep points share no state;
/// the parallel engine is thread-count invariant), but they multiply:
/// jobs x sim_threads OS threads run at once.  When sim_threads > 1 and
/// the product exceeds hardware_concurrency the runner clamps `jobs` down
/// (keeping the requested sim_threads) and warns on stderr; plain --jobs
/// oversubscription stays allowed, and a sim_threads value that
/// alone exceeds the machine is kept, with a warning, since
/// oversubscription changes wall time only, never results.
[[nodiscard]] SweepOpts parse_sweep_opts(int argc, char** argv);

class SweepRunner {
 public:
  explicit SweepRunner(SweepOpts opts) : opts_(std::move(opts)) {}

  /// Run `fn(index, perf)` for every index in [0, n) and return the
  /// results ordered by index.  With jobs > 1 the points execute on a
  /// thread pool; determinism is the point function's contract: it must
  /// build all of its own state (Cluster, Rng seeds) from `index` alone.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0},
                                 std::declval<PointPerf&>()))> {
    using R = decltype(fn(std::size_t{0}, std::declval<PointPerf&>()));
    std::vector<R> results(n);
    const std::size_t base = perf_.size();
    perf_.resize(base + n);
    run_indexed(n, [&](std::size_t i) {
      results[i] = fn(i, perf_[base + i]);
    });
    return results;
  }

  /// Perf records accumulated across every map() call so far.
  [[nodiscard]] const std::vector<PointPerf>& points() const noexcept {
    return perf_;
  }

  /// Total wall seconds spent inside point functions.
  [[nodiscard]] double wall_seconds() const noexcept;

  /// Write the --bench-json document (no-op when the flag was not given).
  /// Returns false if the file could not be opened.
  bool write_json(const std::string& bench_name) const;

 private:
  /// Executes task(i) for i in [0, n), stamping wall_seconds around each
  /// call.  jobs==1 (or n<=1) runs inline, in index order.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& task);

  SweepOpts opts_;
  std::vector<PointPerf> perf_;
};

}  // namespace ipipe::bench
