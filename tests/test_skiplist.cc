#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/rkv/skiplist.h"
#include "fake_env.h"

namespace ipipe::rkv {
namespace {

std::vector<std::uint8_t> val(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(DmoSkipList, InsertAndGet) {
  test::FakeEnv env;
  DmoSkipList list;
  list.create(env);
  EXPECT_TRUE(list.insert(env, "banana", val("yellow")));
  EXPECT_TRUE(list.insert(env, "apple", val("red")));
  EXPECT_TRUE(list.insert(env, "cherry", val("dark")));

  const auto a = list.get(env, "apple");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value, val("red"));
  EXPECT_FALSE(a->tombstone);
  EXPECT_FALSE(list.get(env, "durian").has_value());
  EXPECT_EQ(list.size(), 3u);
}

TEST(DmoSkipList, UpdateReplacesValue) {
  test::FakeEnv env;
  DmoSkipList list;
  list.create(env);
  EXPECT_TRUE(list.insert(env, "k", val("v1")));
  EXPECT_TRUE(list.insert(env, "k", val("v2-longer")));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.get(env, "k")->value, val("v2-longer"));
}

TEST(DmoSkipList, TombstoneMarksDeletion) {
  test::FakeEnv env;
  DmoSkipList list;
  list.create(env);
  EXPECT_TRUE(list.insert(env, "k", val("v")));
  EXPECT_TRUE(list.insert(env, "k", {}, /*tombstone=*/true));
  const auto r = list.get(env, "k");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->tombstone);
}

TEST(DmoSkipList, ScanAllReturnsSortedEntries) {
  test::FakeEnv env;
  DmoSkipList list;
  list.create(env);
  for (const auto* k : {"delta", "alpha", "echo", "bravo", "charlie"}) {
    ASSERT_TRUE(list.insert(env, k, val(k)));
  }
  const auto all = list.scan_all(env);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(std::get<0>(all[i - 1]), std::get<0>(all[i]));
  }
}

TEST(DmoSkipList, ClearFreesEverything) {
  test::FakeEnv env;
  DmoSkipList list;
  list.create(env);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(list.insert(env, "key" + std::to_string(i), val("v")));
  }
  const auto before = env.table().working_set(1);
  list.clear(env);
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.get(env, "key7").has_value());
  EXPECT_LT(env.table().working_set(1), before / 10);
  // Reusable after clear.
  EXPECT_TRUE(list.insert(env, "fresh", val("x")));
  EXPECT_TRUE(list.get(env, "fresh").has_value());
}

TEST(DmoSkipList, MatchesMapOracleUnderRandomOps) {
  test::FakeEnv env;
  DmoSkipList list;
  list.create(env);
  std::map<std::string, std::pair<std::vector<std::uint8_t>, bool>> oracle;
  Rng rng(1234);

  for (int op = 0; op < 3000; ++op) {
    const std::string key = "k" + std::to_string(rng.uniform_u64(300));
    const double dice = rng.uniform();
    if (dice < 0.55) {
      std::vector<std::uint8_t> value(1 + rng.uniform_u64(40));
      for (auto& b : value) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_TRUE(list.insert(env, key, value));
      oracle[key] = {value, false};
    } else if (dice < 0.7) {
      ASSERT_TRUE(list.insert(env, key, {}, true));
      oracle[key] = {{}, true};
    } else {
      const auto got = list.get(env, key);
      const auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(got->tombstone, it->second.second);
        EXPECT_EQ(got->value, it->second.first);
      }
    }
  }
  EXPECT_EQ(list.size(), oracle.size());

  // Final scan matches the oracle exactly, in order.
  const auto all = list.scan_all(env);
  ASSERT_EQ(all.size(), oracle.size());
  auto oit = oracle.begin();
  for (const auto& [key, value, tombstone] : all) {
    EXPECT_EQ(key, oit->first);
    EXPECT_EQ(value, oit->second.first);
    EXPECT_EQ(tombstone, oit->second.second);
    ++oit;
  }
}

TEST(DmoSkipList, SurvivesObjectTableMigration) {
  // The defining property of the DMO skip list (Fig. 12): moving every
  // object to the other side leaves the structure fully usable.
  test::FakeEnv env;
  DmoSkipList list;
  list.create(env);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(list.insert(env, "key" + std::to_string(i),
                            val("value" + std::to_string(i))));
  }
  env.table().migrate_all(1, MemSide::kHost);
  env.set_on_nic(false);  // actor now runs on the host
  for (int i = 0; i < 100; ++i) {
    const auto got = list.get(env, "key" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(got->value, val("value" + std::to_string(i)));
  }
  EXPECT_TRUE(list.insert(env, "post-migration", val("ok")));
  EXPECT_TRUE(list.get(env, "post-migration").has_value());
}

TEST(DmoSkipList, FailsGracefullyOnRegionExhaustion) {
  test::FakeEnv env(1, 16 * 1024);  // tiny region
  DmoSkipList list;
  list.create(env);
  bool saw_failure = false;
  for (int i = 0; i < 1000 && !saw_failure; ++i) {
    saw_failure = !list.insert(env, "key" + std::to_string(i),
                               std::vector<std::uint8_t>(64, 1));
  }
  EXPECT_TRUE(saw_failure);
}

}  // namespace
}  // namespace ipipe::rkv
