// Chaos harness: deterministic, replayable fault schedules executed in
// virtual time against the simulated fabric and its nodes.
//
// A FaultPlan is a list of timestamped fault actions — crash/restore a
// whole node, partition/heal link groups, inject burst corruption on a
// node's PCIe channel, or override the fabric-wide FaultModel for a
// window — built programmatically or parsed from a small text spec (see
// EXPERIMENTS.md "Chaos & recovery").  The ChaosController schedules
// every action on the simulation clock and drives per-node callbacks
// registered by the testbed; because everything runs in virtual time
// from seeded inputs, the same plan against the same binary produces a
// byte-identical event log (the determinism check CI enforces).
//
// The controller itself only knows the Network and the hook functions;
// what "crash" means for a node (detach + wipe volatile runtime state)
// is the testbed's business (ServerNode::crash / restore).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "netsim/network.h"
#include "sim/simulation.h"

namespace ipipe::trace {
class Tracer;
}  // namespace ipipe::trace

namespace ipipe::netsim {

/// One scheduled fault.  `at` is the virtual time it fires; faults with a
/// `duration` heal/restore at `at + duration`.
struct FaultAction {
  enum class Kind : std::uint8_t {
    kCrash,        ///< node detaches + loses volatile state, rejoins later
    kPartition,    ///< group_a <-/-> group_b until healed
    kPcieCorrupt,  ///< burst corruption on one node's PCIe channel rings
    kLinkFault,    ///< fabric-wide FaultModel override for the window
    kNicCrash,     ///< smartNIC firmware dies; host keeps running
    kNicReset,     ///< NIC firmware reset (same host-visible effect,
                   ///< separate verb/log so plans can distinguish intent)
    kPcieFlap,     ///< PCIe link down/up: channel parks traffic, NIC lives
    kAccelFail,    ///< one accelerator bank fails; software fallback
  };

  Kind kind = Kind::kCrash;
  Ns at = 0;
  Ns duration = 0;
  NodeId node = kInvalidNode;        ///< node-scoped kinds
  double rate = 0.0;                 ///< kPcieCorrupt fault rate
  std::uint32_t bank = 0;            ///< kAccelFail accelerator bank
  std::vector<NodeId> group_a;       ///< kPartition
  std::vector<NodeId> group_b;
  FaultModel fault;                  ///< kLinkFault
};

/// A replayable fault schedule.
struct FaultPlan {
  std::vector<FaultAction> actions;

  FaultPlan& crash(NodeId node, Ns at, Ns downtime);
  FaultPlan& partition(std::vector<NodeId> a, std::vector<NodeId> b, Ns at,
                       Ns duration);
  FaultPlan& pcie_corrupt(NodeId node, double rate, Ns at, Ns duration);
  FaultPlan& link_fault(FaultModel fm, Ns at, Ns duration);
  FaultPlan& nic_crash(NodeId node, Ns at, Ns downtime);
  FaultPlan& nic_reset(NodeId node, Ns at, Ns downtime);
  FaultPlan& pcie_flap(NodeId node, Ns at, Ns duration);
  FaultPlan& accel_fail(NodeId node, std::uint32_t bank, Ns at, Ns duration);

  [[nodiscard]] bool empty() const noexcept { return actions.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return actions.size(); }

  /// Parse the text spec.  One directive per line; '#' starts a comment.
  ///   crash <node> at <time> for <duration>
  ///   partition <a,b,...>|<c,d,...> at <time> for <duration>
  ///   pcie-corrupt <node> rate <p> at <time> for <duration>
  ///   link-fault [drop=<p>] [dup=<p>] [corrupt=<p>] [jitter=<time>]
  ///              at <time> for <duration>
  ///   nic-crash <node> at <time> for <duration>
  ///   nic-reset <node> at <time> for <duration>
  ///   pcie-flap <node> at <time> for <duration>
  ///   accel-fail <node> bank <b> at <time> for <duration>
  /// Times accept ns/us/ms/s suffixes (e.g. "250ms", "3s").
  /// Returns nullopt on malformed input; `error` (if given) explains why.
  [[nodiscard]] static std::optional<FaultPlan> parse(
      const std::string& text, std::string* error = nullptr);

  /// Render back to the text-spec grammar (one directive per line, times
  /// in ns so the round trip through parse() is exact).  Shrunk plans are
  /// reported in this form so a failing schedule can be replayed with
  /// --plan / --plan-file.
  [[nodiscard]] std::string to_text() const;
};

/// Per-node callbacks the controller drives.  All optional — an
/// unregistered node (or empty hook) turns that action into a logged
/// no-op rather than an error, so plans can outlive topology changes.
struct NodeHooks {
  std::function<void()> crash;
  std::function<void()> restore;
  /// Burst corruption rate on the node's PCIe channel; 0.0 heals.
  std::function<void(double)> pcie_corrupt;
  /// SmartNIC firmware death / revival (host side keeps running).
  std::function<void()> nic_crash;
  std::function<void()> nic_restore;
  /// PCIe link down (true) / back up (false); NIC firmware stays alive.
  std::function<void(bool)> pcie_flap;
  /// Accelerator bank fails (true) / recovers (false).
  std::function<void(std::uint32_t, bool)> accel_fail;
};

/// Against a sharded fabric the controller becomes multi-domain aware:
/// node-scoped actions (crash, restore, pcie-corrupt) are scheduled on
/// the target node's engine domain, fabric-scoped ones (partition, heal,
/// link-fault) on the switch domain that owns the partition set and the
/// fault model.  Log lines from different domains merge under a mutex
/// keyed by (virtual time, plan sequence), so `event_log()` stays
/// byte-identical across thread counts; the down flags and counters are
/// atomics.  The tracer hook is ignored in sharded mode (one Tracer
/// cannot take concurrent appends).
class ChaosController {
 public:
  ChaosController(sim::Simulation& sim, Network& net) : sim_(sim), net_(net) {}

  void register_node(NodeId node, NodeHooks hooks) {
    hooks_[node] = std::move(hooks);
    down_[node].store(false, std::memory_order_relaxed);
  }
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Schedule every action in `plan` on the simulation clock.  May be
  /// called multiple times; actions from all plans interleave by time.
  void execute(const FaultPlan& plan);

  [[nodiscard]] bool node_down(NodeId node) const {
    const auto it = down_.find(node);
    return it != down_.end() && it->second.load(std::memory_order_relaxed);
  }

  // ---- the replayable record -----------------------------------------------
  /// Every fault/heal event, in execution order, as "t=<ns> <what> ..."
  /// lines.  Byte-identical across runs of the same plan + same binary
  /// (and, sharded, across thread counts).  Call only while the
  /// simulation is not running.
  [[nodiscard]] const std::vector<std::string>& event_log() const;
  /// The log joined with newlines (for the determinism byte-compare).
  [[nodiscard]] std::string event_log_text() const;

  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t restores() const noexcept { return restores_; }
  [[nodiscard]] std::uint64_t partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] std::uint64_t heals() const noexcept { return heals_; }
  [[nodiscard]] std::uint64_t nic_crashes() const noexcept {
    return nic_crashes_;
  }
  [[nodiscard]] std::uint64_t nic_restores() const noexcept {
    return nic_restores_;
  }

 private:
  /// `s` is the domain queue the action executes on (the node's domain /
  /// the switch domain when sharded; `sim_` otherwise).  `seq` is the
  /// action's plan-order sequence, the deterministic tie-break for log
  /// lines that share a timestamp.
  void fire_crash(sim::Simulation& s, const FaultAction& a, std::uint64_t seq);
  void fire_partition(sim::Simulation& s, const FaultAction& a,
                      std::uint64_t seq);
  void fire_pcie_corrupt(sim::Simulation& s, const FaultAction& a,
                         std::uint64_t seq);
  void fire_link_fault(sim::Simulation& s, const FaultAction& a,
                       std::uint64_t seq);
  void fire_nic_crash(sim::Simulation& s, const FaultAction& a,
                      std::uint64_t seq);
  void fire_pcie_flap(sim::Simulation& s, const FaultAction& a,
                      std::uint64_t seq);
  void fire_accel_fail(sim::Simulation& s, const FaultAction& a,
                       std::uint64_t seq);
  /// Domain an action schedules on (multi-domain dispatch when sharded).
  [[nodiscard]] sim::Simulation& action_sim(const FaultAction& a);
  void log_line(Ns t, std::uint64_t seq, std::string line);
  void trace_event(const char* name, double arg);

  sim::Simulation& sim_;
  Network& net_;
  trace::Tracer* tracer_ = nullptr;
  std::map<NodeId, NodeHooks> hooks_;
  /// Pre-populated at registration / plan execution (the map's shape is
  /// frozen while workers run; only the atomic flags flip).
  std::map<NodeId, std::atomic<bool>> down_;
  struct LogRec {
    Ns t;
    std::uint64_t seq;
    std::string line;
  };
  mutable std::mutex log_mu_;
  mutable std::vector<LogRec> recs_;
  mutable std::vector<std::string> log_;  ///< sorted cache, rebuilt on read
  std::uint64_t next_seq_ = 0;            ///< 2 per action: fire, then heal
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> restores_{0};
  std::atomic<std::uint64_t> partitions_{0};
  std::atomic<std::uint64_t> heals_{0};
  std::atomic<std::uint64_t> nic_crashes_{0};
  std::atomic<std::uint64_t> nic_restores_{0};
  /// NIC-down flags, same discipline as `down_` (dedup of overlapping
  /// nic-crash windows; the map's shape freezes before workers run).
  std::map<NodeId, std::atomic<bool>> nic_down_;
};

}  // namespace ipipe::netsim
