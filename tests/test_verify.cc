// Verification subsystem tests: the linearizability and serializability
// checkers on hand-built histories (known-good and known-bad), the
// mutation self-tests (seeded bugs must be CAUGHT), clean chaos seeds
// (no false positives), and the fault-plan shrinker (deterministic,
// small minimized plans).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "verify/fuzz.h"
#include "verify/history.h"
#include "verify/linearize.h"
#include "verify/serialize.h"

namespace ipipe {
namespace {

using verify::DtHistory;
using verify::KvHistory;
using verify::KvOp;
using verify::kPendingNs;

std::vector<std::uint8_t> val(std::uint8_t tag) { return {tag, 0x5A, tag}; }

KvOp kv_put(std::uint64_t rid, const std::string& key,
            std::vector<std::uint8_t> v, Ns inv, Ns res) {
  KvOp op;
  op.request_id = rid;
  op.op = rkv::Op::kPut;
  op.key = key;
  op.arg = std::move(v);
  op.invoke = inv;
  op.response = res;
  if (res != kPendingNs) {
    op.has_status = true;
    op.status = rkv::Status::kOk;
  }
  return op;
}

KvOp kv_get(std::uint64_t rid, const std::string& key, Ns inv, Ns res,
            rkv::Status status, std::vector<std::uint8_t> result = {}) {
  KvOp op;
  op.request_id = rid;
  op.op = rkv::Op::kGet;
  op.key = key;
  op.invoke = inv;
  op.response = res;
  op.has_status = true;
  op.status = status;
  op.result = std::move(result);
  return op;
}

// ------------------------------------------------------ linearizability --

TEST(Linearize, AcceptsSequentialHistory) {
  KvHistory h;
  h.ops.push_back(kv_put(1, "k", val(1), 0, 10));
  h.ops.push_back(kv_get(2, "k", 20, 30, rkv::Status::kOk, val(1)));
  h.ops.push_back(kv_put(3, "k", val(2), 40, 50));
  h.ops.push_back(kv_get(4, "k", 60, 70, rkv::Status::kOk, val(2)));
  const auto r = verify::check_kv_linearizable(h);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_FALSE(r.inconclusive);
}

TEST(Linearize, AcceptsConcurrentOverlap) {
  // Two puts overlap; a read concurrent with both may observe either.
  KvHistory h;
  h.ops.push_back(kv_put(1, "k", val(1), 0, 100));
  h.ops.push_back(kv_put(2, "k", val(2), 10, 90));
  h.ops.push_back(kv_get(3, "k", 20, 80, rkv::Status::kOk, val(1)));
  EXPECT_TRUE(verify::check_kv_linearizable(h).ok);
  h.ops[2] = kv_get(3, "k", 20, 80, rkv::Status::kOk, val(2));
  EXPECT_TRUE(verify::check_kv_linearizable(h).ok);
}

TEST(Linearize, PendingPutMayOrMayNotTakeEffect) {
  // An unacknowledged put is concurrent with everything after its
  // invoke: a later read may see it or not.
  KvHistory h;
  h.ops.push_back(kv_put(1, "k", val(1), 0, 10));
  h.ops.push_back(kv_put(2, "k", val(2), 20, kPendingNs));
  h.ops.push_back(kv_get(3, "k", 30, 40, rkv::Status::kOk, val(2)));
  EXPECT_TRUE(verify::check_kv_linearizable(h).ok);
  h.ops[2] = kv_get(3, "k", 30, 40, rkv::Status::kOk, val(1));
  EXPECT_TRUE(verify::check_kv_linearizable(h).ok);
}

TEST(Linearize, RejectsStaleRead) {
  // The second put was acknowledged before the read was invoked, so the
  // read observing the first value is a stale read.
  KvHistory h;
  h.ops.push_back(kv_put(1, "k", val(1), 0, 10));
  h.ops.push_back(kv_put(2, "k", val(2), 20, 30));
  h.ops.push_back(kv_get(3, "k", 40, 50, rkv::Status::kOk, val(1)));
  const auto r = verify::check_kv_linearizable(h);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.inconclusive);
  EXPECT_NE(r.detail.find("not linearizable"), std::string::npos) << r.detail;
}

TEST(Linearize, RejectsReadOfValueNeverWritten) {
  KvHistory h;
  h.ops.push_back(kv_put(1, "k", val(1), 0, 10));
  h.ops.push_back(kv_get(2, "k", 20, 30, rkv::Status::kOk, val(9)));
  EXPECT_FALSE(verify::check_kv_linearizable(h).ok);
}

TEST(Linearize, RejectsLostAckedWrite) {
  // NotFound after an acknowledged put with no delete anywhere.
  KvHistory h;
  h.ops.push_back(kv_put(1, "k", val(1), 0, 10));
  h.ops.push_back(kv_get(2, "k", 20, 30, rkv::Status::kNotFound));
  EXPECT_FALSE(verify::check_kv_linearizable(h).ok);
}

TEST(Linearize, KeysArePartitionedIndependently) {
  // A violation on one key does not hide behind traffic on another.
  KvHistory h;
  h.ops.push_back(kv_put(1, "a", val(1), 0, 10));
  h.ops.push_back(kv_get(2, "a", 20, 30, rkv::Status::kOk, val(1)));
  h.ops.push_back(kv_put(3, "b", val(2), 0, 10));
  h.ops.push_back(kv_get(4, "b", 20, 30, rkv::Status::kNotFound));
  const auto r = verify::check_kv_linearizable(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("key=b"), std::string::npos) << r.detail;
  EXPECT_EQ(r.detail.find("key=a"), std::string::npos) << r.detail;
}

// -------------------------------------------- serializability/atomicity --

using Outcome = dt::CoordinatorObserver::Outcome;

Outcome committed_txn(std::uint64_t txn, Ns decided_at) {
  Outcome o;
  o.txn_id = txn;
  o.status = dt::TxnStatus::kCommitted;
  o.decided_at = decided_at;
  return o;
}

DtHistory::Apply install(std::uint64_t txn, netsim::NodeId node,
                         const std::string& key, std::uint32_t version,
                         std::vector<std::uint8_t> value, Ns at) {
  return DtHistory::Apply{at, node, txn, key, version, std::move(value)};
}

/// Register a validated read both in the coordinator outcome and in the
/// participant-side read records (the checker joins the two).
void add_read(Outcome& o, DtHistory& h, netsim::NodeId node,
              const std::string& key, std::uint32_t version,
              std::vector<std::uint8_t> value, Ns at) {
  o.request.reads.push_back(dt::TxnRead{node, key});
  o.read_versions.push_back(version);
  o.read_values.push_back(value);
  h.reads.push_back(
      DtHistory::Read{at, node, o.txn_id, key, version, std::move(value),
                      /*ok=*/true});
}

TEST(Serialize, CleanHistoryPasses) {
  DtHistory h;
  auto t1 = committed_txn(1, 100);
  h.applies.push_back(install(1, 0, "x", 1, val(1), 90));
  auto t2 = committed_txn(2, 200);
  add_read(t2, h, 0, "x", 1, val(1), 180);
  h.applies.push_back(install(2, 0, "y", 1, val(2), 190));
  h.outcomes.push_back(t1);
  h.outcomes.push_back(t2);
  const auto r = verify::check_dt_history(h);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.committed, 2u);
  EXPECT_EQ(r.edges, 1u);  // wr: 1 -> 2
}

TEST(Serialize, AtomicityRejectsVisibleAbortedWrite) {
  DtHistory h;
  Outcome o;
  o.txn_id = 7;
  o.status = dt::TxnStatus::kAbortedValidation;
  o.decided_at = 50;
  h.outcomes.push_back(o);
  h.applies.push_back(install(7, 1, "x", 1, val(1), 60));
  const auto r = verify::check_dt_history(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("atomicity:"), std::string::npos) << r.detail;
  EXPECT_NE(r.detail.find("aborted write visible"), std::string::npos);
}

TEST(Serialize, InDoubtInstallIsAllowed) {
  // An install by a transaction with no recorded outcome is in-doubt
  // (coordinator crashed before deciding), not a violation.
  DtHistory h;
  h.applies.push_back(install(42, 0, "x", 1, val(1), 10));
  const auto r = verify::check_dt_history(h);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.in_doubt, 1u);
}

TEST(Serialize, RejectsWrCycle) {
  // T1 reads T2's write and vice versa: wr edges both ways.
  DtHistory h;
  auto t1 = committed_txn(1, 300);
  auto t2 = committed_txn(2, 300);
  h.applies.push_back(install(1, 0, "a", 1, val(1), 100));
  h.applies.push_back(install(2, 0, "b", 1, val(2), 100));
  add_read(t1, h, 0, "b", 1, val(2), 200);
  add_read(t2, h, 0, "a", 1, val(1), 200);
  h.outcomes.push_back(t1);
  h.outcomes.push_back(t2);
  const auto r = verify::check_dt_serializable(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("serialization cycle"), std::string::npos)
      << r.detail;
}

TEST(Serialize, RejectsRwWwCycle) {
  // T1 read x@v0 then T2 installed x@1 (rw T1->T2); T2's y install
  // precedes T1's y install in the same chain (ww T2->T1).
  DtHistory h;
  auto t1 = committed_txn(1, 500);
  auto t2 = committed_txn(2, 400);
  add_read(t1, h, 0, "x", 0, {}, 100);
  h.applies.push_back(install(2, 0, "x", 1, val(2), 200));
  h.applies.push_back(install(2, 0, "y", 1, val(2), 200));
  h.applies.push_back(install(1, 0, "y", 2, val(1), 300));
  h.outcomes.push_back(t1);
  h.outcomes.push_back(t2);
  const auto r = verify::check_dt_serializable(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("serialization cycle"), std::string::npos)
      << r.detail;
}

TEST(Serialize, ReplayedInstallAfterWipeIsNotAViolation) {
  // T1 committed long before node 0's wipe; the coordinator's commit
  // retransmit re-installs its write afterwards.  T2 decided after the
  // wipe and wrote the same key.  Without the replay exemption this
  // reads as T2 -> T1 -> T2.
  DtHistory h;
  auto t1 = committed_txn(1, 100);
  h.applies.push_back(install(1, 0, "x", 1, val(1), 110));
  h.wipes.push_back(DtHistory::Wipe{500, 0});
  auto t2 = committed_txn(2, 600);
  h.applies.push_back(install(2, 0, "x", 1, val(2), 610));
  // Replay of T1's write lands after T2's fresh install.
  h.applies.push_back(install(1, 0, "x", 2, val(1), 700));
  add_read(t1, h, 0, "x", 0, {}, 90);
  h.outcomes.push_back(t1);
  h.outcomes.push_back(t2);
  const auto r = verify::check_dt_serializable(h);
  EXPECT_TRUE(r.ok) << r.detail;
}

// ----------------------------------------------- end-to-end fuzz runs --

TEST(VerifyFuzz, RkvStaleReadBugCaught) {
  verify::FuzzOptions opt;
  opt.seed = 1;
  opt.app = verify::FuzzApp::kRkv;
  opt.inject_stale_reads = true;
  const auto v = verify::run_verify_once(opt);
  ASSERT_FALSE(v.ok) << "seeded stale-read bug was not caught";
  EXPECT_EQ(v.checker, "linearizability");
  EXPECT_GT(v.kv_completed, 0u);
}

TEST(VerifyFuzz, DtLostAbortBugCaught) {
  verify::FuzzOptions opt;
  opt.seed = 2;
  opt.app = verify::FuzzApp::kDt;
  opt.inject_lost_abort = true;
  const auto v = verify::run_verify_once(opt);
  ASSERT_FALSE(v.ok) << "seeded lost-abort bug was not caught";
  EXPECT_EQ(v.checker, "atomicity");
  EXPECT_GT(v.txns_aborted, 0u);
}

TEST(VerifyFuzz, CleanSeedsPassUnderChaos) {
  // No false positives: ten random seeds, both applications, chaos on.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    verify::FuzzOptions opt;
    opt.seed = seed;
    opt.app = seed % 2 ? verify::FuzzApp::kRkv : verify::FuzzApp::kDt;
    const auto v = verify::run_verify_once(opt);
    EXPECT_TRUE(v.ok) << "seed " << seed << " checker=" << v.checker << "\n"
                      << v.detail;
    EXPECT_FALSE(v.inconclusive) << "seed " << seed;
    if (opt.app == verify::FuzzApp::kRkv) {
      EXPECT_GT(v.kv_completed, 100u) << "seed " << seed;
    } else {
      EXPECT_GT(v.txns_committed, 100u) << "seed " << seed;
    }
  }
}

TEST(VerifyFuzz, ShrinkIsDeterministicAndSmall) {
  verify::FuzzOptions opt;
  opt.seed = 1;
  opt.app = verify::FuzzApp::kRkv;
  opt.inject_stale_reads = true;
  const auto failing = verify::run_verify_once(opt);
  ASSERT_FALSE(failing.ok);

  const auto s1 = verify::shrink_fault_plan(opt, failing.plan);
  ASSERT_FALSE(s1.verdict.ok) << "minimized plan no longer reproduces";
  EXPECT_LE(s1.plan.size(), 3u) << s1.plan.to_text();
  EXPECT_LT(s1.plan.size(), failing.plan.size());

  // Same seed, same failing plan => byte-identical minimized plan.
  const auto s2 = verify::shrink_fault_plan(opt, failing.plan);
  EXPECT_EQ(s1.plan.to_text(), s2.plan.to_text());
  EXPECT_EQ(s1.runs, s2.runs);
}

}  // namespace
}  // namespace ipipe
