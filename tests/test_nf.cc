#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "apps/nf/chain_repl.h"
#include "apps/nf/count_min.h"
#include "apps/nf/ipsec.h"
#include "apps/nf/kv_cache.h"
#include "apps/nf/leaky_bucket.h"
#include "apps/nf/lpm_trie.h"
#include "apps/nf/maglev.h"
#include "apps/nf/naive_bayes.h"
#include "apps/nf/pfabric.h"
#include "apps/nf/tcam.h"
#include "common/rng.h"
#include "common/units.h"

namespace ipipe::nf {
namespace {

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch sketch(1024, 4);
  Rng rng(1);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.uniform_u64(500);
    sketch.add(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.estimate(key), count);
  }
}

TEST(CountMin, RejectsZeroDimensions) {
  // Regression: width 0 made index() compute `hash % 0` (UB); depth 0
  // made estimate() return uint64_t-max from an empty min-fold.  Both
  // are rejected at construction now.
  EXPECT_THROW(CountMinSketch(0, 4), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(1024, 0), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(0, 0), std::invalid_argument);
}

TEST(CountMin, AccurateForHeavyHitters) {
  CountMinSketch sketch(4096, 4);
  for (int i = 0; i < 10'000; ++i) sketch.add(42);
  for (int i = 0; i < 1000; ++i) sketch.add(static_cast<std::uint64_t>(i + 100));
  const auto est = sketch.estimate(42);
  EXPECT_GE(est, 10'000u);
  EXPECT_LE(est, 10'050u);
}

TEST(SoftTcam, PriorityAndWildcards) {
  SoftTcam tcam;
  // Low priority: accept everything.
  tcam.add_rule(TcamRule{{}, {}, 1, 100});
  // High priority: drop traffic to port 22.
  TcamRule ssh{};
  ssh.value.dst_port = 22;
  ssh.mask.dst_port = 0xFFFF;
  ssh.priority = 10;
  ssh.action = 0;
  tcam.add_rule(ssh);

  FiveTuple pkt;
  pkt.dst_port = 22;
  const auto r1 = tcam.lookup(pkt);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->action, 0u);
  EXPECT_EQ(r1->rules_scanned, 1u);

  pkt.dst_port = 80;
  const auto r2 = tcam.lookup(pkt);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->action, 100u);
  EXPECT_EQ(r2->rules_scanned, 2u);
}

TEST(SoftTcam, MatchesLinearScanOracle) {
  Rng rng(2);
  SoftTcam tcam;
  std::vector<TcamRule> rules;
  for (int i = 0; i < 200; ++i) {
    TcamRule rule{};
    rule.value.src_ip = static_cast<std::uint32_t>(rng.next());
    rule.mask.src_ip = 0xFFFFFF00u << (rng.uniform_u64(3) * 4);
    rule.value.proto = static_cast<std::uint8_t>(rng.uniform_u64(3));
    rule.mask.proto = rng.bernoulli(0.5) ? 0xFF : 0x00;
    rule.priority = static_cast<std::uint32_t>(rng.uniform_u64(1000));
    rule.action = static_cast<std::uint32_t>(i + 1);
    tcam.add_rule(rule);
    rules.push_back(rule);
  }
  // Oracle: max-priority matching rule via linear scan.
  for (int t = 0; t < 500; ++t) {
    FiveTuple pkt;
    pkt.src_ip = static_cast<std::uint32_t>(rng.next());
    pkt.proto = static_cast<std::uint8_t>(rng.uniform_u64(3));
    const TcamRule* best = nullptr;
    for (const auto& rule : rules) {
      if (rule.matches(pkt) && (best == nullptr || rule.priority > best->priority)) {
        best = &rule;
      }
    }
    const auto got = tcam.lookup(pkt);
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->priority, best->priority);
    }
  }
}

TEST(LpmTrie, LongestPrefixWins) {
  LpmTrie trie;
  trie.insert(0x0A000000, 8, 1);   // 10.0.0.0/8
  trie.insert(0x0A010000, 16, 2);  // 10.1.0.0/16
  trie.insert(0x0A010100, 24, 3);  // 10.1.1.0/24

  EXPECT_EQ(trie.lookup(0x0A010105)->next_hop, 3u);
  EXPECT_EQ(trie.lookup(0x0A010205)->next_hop, 2u);
  EXPECT_EQ(trie.lookup(0x0A020305)->next_hop, 1u);
  EXPECT_FALSE(trie.lookup(0x0B000001).has_value());
}

TEST(LpmTrie, MatchesBruteForceOracle) {
  Rng rng(3);
  LpmTrie trie;
  std::vector<std::tuple<std::uint32_t, unsigned, std::uint32_t>> prefixes;
  for (int i = 0; i < 300; ++i) {
    const unsigned len = 4 + static_cast<unsigned>(rng.uniform_u64(25));
    const std::uint32_t prefix =
        static_cast<std::uint32_t>(rng.next()) & (len == 32 ? ~0u : ~0u << (32 - len));
    trie.insert(prefix, len, static_cast<std::uint32_t>(i + 1));
    prefixes.emplace_back(prefix, len, static_cast<std::uint32_t>(i + 1));
  }
  for (int t = 0; t < 2000; ++t) {
    const auto addr = static_cast<std::uint32_t>(rng.next());
    unsigned best_len = 0;
    std::uint32_t best_hop = 0;
    bool found = false;
    for (const auto& [prefix, len, hop] : prefixes) {
      const std::uint32_t mask = len == 0 ? 0 : (len == 32 ? ~0u : ~0u << (32 - len));
      if ((addr & mask) == (prefix & mask) && (!found || len >= best_len)) {
        // On exact duplicate (prefix,len) the trie keeps the last insert.
        if (!found || len > best_len ||
            (len == best_len && hop > best_hop)) {
          best_len = len;
          best_hop = hop;
        }
        found = true;
      }
    }
    const auto got = trie.lookup(addr);
    EXPECT_EQ(got.has_value(), found);
    if (found && got) EXPECT_EQ(got->prefix_len, best_len);
  }
}

TEST(LpmTrie, EraseRemovesRoute) {
  LpmTrie trie;
  trie.insert(0x0A000000, 8, 1);
  EXPECT_TRUE(trie.erase(0x0A000000, 8));
  EXPECT_FALSE(trie.erase(0x0A000000, 8));
  EXPECT_FALSE(trie.lookup(0x0A000001).has_value());
}

TEST(Maglev, BalancedDistribution) {
  std::vector<std::string> backends;
  for (int i = 0; i < 10; ++i) backends.push_back("be" + std::to_string(i));
  MaglevTable table(backends, 65537);
  const auto dist = table.load_distribution();
  const auto [lo, hi] = std::minmax_element(dist.begin(), dist.end());
  // Maglev guarantees near-perfect balance.
  EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo), 1.02);
}

TEST(Maglev, MinimalDisruptionOnBackendFailure) {
  std::vector<std::string> backends;
  for (int i = 0; i < 10; ++i) backends.push_back("be" + std::to_string(i));
  MaglevTable table(backends, 65537);
  const double disruption = table.remove_backend(3);
  // Ideal: only the failed backend's ~10% of entries move; Maglev gets
  // close to that (paper reports ~same order).
  EXPECT_GT(disruption, 0.08);
  EXPECT_LT(disruption, 0.25);
  // No lookups land on the dead backend.
  Rng rng(4);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_NE(table.lookup(rng.next()), 3u);
  }
}

TEST(LeakyBucket, EnforcesRate) {
  LeakyBucket bucket(8e6 /*1MB/s*/, 2000, 10'000);
  Ns now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += usec(100);  // 10k pkts/s of 1KB => 10MB/s offered, 1MB/s allowed
    bucket.offer(now, 1000);
  }
  bucket.drain(now);
  // 100ms at 1MB/s = 100KB = ~100 packets (plus the 2KB burst).
  EXPECT_NEAR(static_cast<double>(bucket.passed()), 102, 8);
}

TEST(LeakyBucket, BurstAllowsInitialSpike) {
  LeakyBucket bucket(1e6, 10'000, 100);
  int passed = 0;
  for (int i = 0; i < 12; ++i) {
    if (bucket.offer(1, 1000)) ++passed;
  }
  EXPECT_EQ(passed, 10);  // exactly the burst budget
}

TEST(PFabric, DequeuesSmallestRemaining) {
  PFabricScheduler sched;
  Rng rng(5);
  std::vector<std::uint32_t> remaining;
  for (int i = 0; i < 500; ++i) {
    const auto r = static_cast<std::uint32_t>(rng.uniform_u64(1'000'000));
    sched.enqueue({static_cast<std::uint64_t>(i), r, 0});
    remaining.push_back(r);
  }
  std::sort(remaining.begin(), remaining.end());
  for (const auto expected : remaining) {
    const auto e = sched.dequeue();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->remaining, expected);
  }
  EXPECT_FALSE(sched.dequeue().has_value());
}

TEST(PFabric, MonotoneInsertionStaysBalanced) {
  // Regression: a long flow draining in order produces strictly
  // increasing `remaining` keys.  The old plain BST degenerated into a
  // linked list (enqueue #4096 visited 4096 nodes); the treap keeps the
  // expected depth logarithmic regardless of insertion order.
  PFabricScheduler sched;
  constexpr std::size_t kN = 4096;
  std::size_t max_visits = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    sched.enqueue({i, static_cast<std::uint32_t>(i + 1), 0});
    max_visits = std::max(max_visits, sched.last_visits());
  }
  EXPECT_EQ(sched.size(), kN);
  // log2(4096) = 12; allow generous slack for treap variance, but far
  // below the linear 4096 the unbalanced tree produced.
  EXPECT_LE(max_visits, 64u);

  // Order semantics are unchanged: ascending by remaining.
  for (std::size_t i = 0; i < kN; ++i) {
    const auto e = sched.dequeue();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->remaining, static_cast<std::uint32_t>(i + 1));
  }
  EXPECT_FALSE(sched.dequeue().has_value());
}

TEST(PFabric, EqualKeysDequeueInInsertionOrder) {
  // Tie-break contract the treap must preserve: equal (remaining,
  // flow_id) entries go to the right, so they drain FIFO.
  PFabricScheduler sched;
  for (std::uint64_t ref = 1; ref <= 32; ++ref) {
    sched.enqueue({7, 1000, ref});
  }
  for (std::uint64_t ref = 1; ref <= 32; ++ref) {
    const auto e = sched.dequeue();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->packet_ref, ref);
  }
}

TEST(PFabric, DropLowestEvictsLargest) {
  PFabricScheduler sched;
  sched.enqueue({1, 100, 0});
  sched.enqueue({2, 900, 0});
  sched.enqueue({3, 500, 0});
  const auto dropped = sched.drop_lowest();
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->remaining, 900u);
  EXPECT_EQ(sched.size(), 2u);
}

TEST(KvCache, PutGetDelete) {
  KvCache cache(256, 1 << 20);
  cache.put("a", "1");
  cache.put("b", "2");
  EXPECT_EQ(cache.get("a").value_or(""), "1");
  cache.put("a", "updated");
  EXPECT_EQ(cache.get("a").value_or(""), "updated");
  EXPECT_TRUE(cache.del("a"));
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_FALSE(cache.del("a"));
}

TEST(KvCache, EvictsUnderCapacity) {
  KvCache cache(16, 1000);
  for (int i = 0; i < 100; ++i) {
    cache.put("key" + std::to_string(i), std::string(50, 'x'));
  }
  EXPECT_LE(cache.memory_bytes(), 1000u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(NaiveBayes, LearnsSeparableClasses) {
  NaiveBayes nb(2, 8);
  Rng rng(6);
  // Class 0: mass on features 0-3; class 1: mass on features 4-7.
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint32_t> f0(8, 0);
    std::vector<std::uint32_t> f1(8, 0);
    for (int j = 0; j < 4; ++j) {
      f0[static_cast<std::size_t>(j)] = 5 + static_cast<std::uint32_t>(rng.uniform_u64(10));
      f1[static_cast<std::size_t>(j + 4)] = 5 + static_cast<std::uint32_t>(rng.uniform_u64(10));
    }
    nb.train(0, f0);
    nb.train(1, f1);
  }
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint32_t> f(8, 0);
    const std::size_t cls = rng.bernoulli(0.5) ? 1 : 0;
    for (int j = 0; j < 4; ++j) {
      f[cls * 4 + static_cast<std::size_t>(j)] =
          3 + static_cast<std::uint32_t>(rng.uniform_u64(8));
    }
    if (nb.classify(f).cls == cls) ++correct;
  }
  EXPECT_GT(correct, 95);
}

TEST(ChainReplicator, CommitAfterAllAcks) {
  ChainReplicator chain({1, 2, 3});
  const auto p = chain.submit();
  EXPECT_EQ(p.seq, 1u);
  EXPECT_EQ(p.acks_needed, 2u);
  EXPECT_FALSE(chain.ack(p.seq));
  EXPECT_TRUE(chain.ack(p.seq));
  EXPECT_EQ(chain.committed(), 1u);
  EXPECT_EQ(chain.pending_count(), 0u);
  EXPECT_FALSE(chain.ack(p.seq));  // already committed
}

TEST(Ipsec, EncapsulateDecapsulateRoundTrip) {
  const std::vector<std::uint8_t> aes_key(32, 0x11);
  IpsecGateway tx(aes_key, {0x22, 0x22, 0x22, 0x22});
  IpsecGateway rx(aes_key, {0x22, 0x22, 0x22, 0x22});

  std::vector<std::uint8_t> plain(777);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i);
  }
  const auto esp = tx.encapsulate(plain);
  EXPECT_NE(esp.ciphertext, plain);
  const auto back = rx.decapsulate(esp);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plain);
}

TEST(Ipsec, RejectsTamperedCiphertext) {
  const std::vector<std::uint8_t> aes_key(32, 0x11);
  IpsecGateway tx(aes_key, {0x22});
  IpsecGateway rx(aes_key, {0x22});
  auto esp = tx.encapsulate(std::vector<std::uint8_t>(100, 0x5A));
  esp.ciphertext[50] ^= 0x01;
  EXPECT_FALSE(rx.decapsulate(esp).has_value());
  EXPECT_EQ(rx.auth_failures(), 1u);
}

TEST(Ipsec, RejectsReplay) {
  const std::vector<std::uint8_t> aes_key(32, 0x11);
  IpsecGateway tx(aes_key, {0x22});
  IpsecGateway rx(aes_key, {0x22});
  const auto esp1 = tx.encapsulate(std::vector<std::uint8_t>(10, 1));
  const auto esp2 = tx.encapsulate(std::vector<std::uint8_t>(10, 2));
  EXPECT_TRUE(rx.decapsulate(esp1).has_value());
  EXPECT_TRUE(rx.decapsulate(esp2).has_value());
  EXPECT_FALSE(rx.decapsulate(esp1).has_value());  // replayed
  EXPECT_EQ(rx.replays(), 1u);
}

TEST(Ipsec, WrongKeyFailsAuthentication) {
  const std::vector<std::uint8_t> key_a(32, 0x11);
  const std::vector<std::uint8_t> key_b(32, 0x12);
  IpsecGateway tx(key_a, {0x22});
  IpsecGateway rx(key_b, {0x23});
  const auto esp = tx.encapsulate(std::vector<std::uint8_t>(64, 0xAB));
  EXPECT_FALSE(rx.decapsulate(esp).has_value());
}

}  // namespace
}  // namespace ipipe::nf
