// Distributed Memory Objects (DMO), §3.3.
//
// A DMO is a contiguous, actor-private buffer addressed by *object id*
// rather than pointer, so the runtime can move it between NIC and host
// without invalidating the actor's state.  Each registered actor owns a
// fixed-size memory region on each side; objects are carved out of the
// owning region by a real first-fit free-list allocator (standing in for
// the firmware's dlmalloc2), so capacity pressure and fragmentation are
// genuine.  Object payloads are real bytes: applications store skip-list
// nodes, hash buckets and log entries in them.
//
// Isolation (§3.4): every access is checked against the owning actor and
// object bounds; violations raise a trap that the runtime turns into
// actor deregistration (the paper's TLB-trap path).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/trace.h"
#include "netsim/packet.h"

namespace ipipe {

using ObjId = std::uint64_t;
constexpr ObjId kInvalidObj = 0;

using netsim::ActorId;

enum class MemSide : std::uint8_t { kNic = 0, kHost = 1 };

/// First-fit free-list allocator with immediate coalescing over a
/// simulated address range.
class RegionAllocator {
 public:
  RegionAllocator(std::uint64_t base, std::uint64_t size);

  /// Returns the allocated address or nullopt when no block fits.
  [[nodiscard]] std::optional<std::uint64_t> alloc(std::uint64_t size,
                                                   std::uint64_t align = 16);
  /// Frees a previous allocation; returns false for unknown addresses.
  bool free(std::uint64_t addr);

  [[nodiscard]] std::uint64_t bytes_used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t bytes_free() const noexcept { return size_ - used_; }
  [[nodiscard]] std::uint64_t region_base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t region_size() const noexcept { return size_; }
  /// Largest single allocatable block (external fragmentation probe).
  [[nodiscard]] std::uint64_t largest_free_block() const noexcept;
  [[nodiscard]] std::size_t free_block_count() const noexcept {
    return free_blocks_.size();
  }
  /// Snapshot of the free list as (addr, size) pairs in address order —
  /// introspection for invariant checks (tests) and fragmentation dumps.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  free_blocks() const {
    return {free_blocks_.begin(), free_blocks_.end()};
  }

 private:
  std::uint64_t base_;
  std::uint64_t size_;
  std::uint64_t used_ = 0;
  std::map<std::uint64_t, std::uint64_t> free_blocks_;  // addr -> size
  std::unordered_map<std::uint64_t, std::uint64_t> live_;  // addr -> padded size
};

/// Outcome of a checked DMO access.
enum class DmoStatus {
  kOk,
  kNoSuchObject,
  kWrongOwner,   ///< isolation trap: touching another actor's object
  kOutOfBounds,  ///< isolation trap: past the end of the object
  kNoMemory,     ///< region exhausted (the paper: "DMO allocation fails")
  kWrongSide,    ///< object currently lives on the other side of PCIe
  kQuotaExceeded,  ///< tenant quota group over cap (not an isolation trap)
};

struct DmoRecord {
  ObjId id = kInvalidObj;
  ActorId owner = 0;
  std::uint64_t addr = 0;  ///< simulated address within the owner's region
  std::uint32_t size = 0;
  MemSide side = MemSide::kNic;
  std::vector<std::uint8_t> data;  ///< real payload bytes
};

/// Outcome of `ObjectTable::migrate_all`.  A mid-loop allocation failure
/// on the target side no longer passes silently: the caller sees exactly
/// how much moved and how many objects stayed behind (split residency).
struct MigrateResult {
  std::uint64_t payload_bytes = 0;  ///< sum of rec->size actually moved
  std::uint64_t padded_bytes = 0;   ///< allocator bytes consumed on the target
  std::uint64_t moved_objects = 0;
  std::uint64_t failed_objects = 0;  ///< kNoMemory on the target region
  [[nodiscard]] bool complete() const noexcept { return failed_objects == 0; }
};

/// Outcome of `ObjectTable::evacuate_all` — the crash-consistent variant
/// of migrate_all used when the NIC side is unreachable.  With the host
/// mirror enabled the payload is replayed from the mirror copy
/// (`replayed_bytes`); without it the NIC-resident bytes died with the
/// device and the objects come back zero-filled (`lost_bytes`).
struct EvacResult {
  std::uint64_t payload_bytes = 0;
  std::uint64_t moved_objects = 0;
  std::uint64_t failed_objects = 0;  ///< host region exhausted
  std::uint64_t replayed_bytes = 0;  ///< restored from the host mirror
  std::uint64_t lost_bytes = 0;      ///< no mirror: content zero-filled
  [[nodiscard]] bool complete() const noexcept { return failed_objects == 0; }
};

/// Object table (one logical table spanning both sides, with per-object
/// location, Figure 12-a).  The runtime consults `side` to decide
/// whether an access is local; actors never observe raw addresses.
class ObjectTable {
 public:
  /// Register an actor with a `region_bytes` private region on `side`.
  /// Each actor's region exists independently on both sides so objects
  /// can migrate; capacity is tracked per (actor, side).
  void register_actor(ActorId actor, std::uint64_t region_bytes);
  void deregister_actor(ActorId actor);
  [[nodiscard]] bool actor_registered(ActorId actor) const noexcept;

  /// dmo_malloc: allocate `size` bytes for `actor` on `side`.
  [[nodiscard]] DmoStatus alloc(ActorId actor, std::uint32_t size, MemSide side,
                                ObjId& out_id);
  /// dmo_free.
  DmoStatus free(ActorId actor, ObjId id);

  /// Checked read/write (dmo_memcpy to/from actor scratch).  When
  /// `exec_side` is given, the access is additionally checked against the
  /// object's current residency: touching an object on the far side of
  /// PCIe returns kWrongSide *without* performing the access, and the
  /// runtime decides whether to charge the DMA cost and retry or to trap.
  DmoStatus read(ActorId actor, ObjId id, std::uint32_t offset,
                 std::span<std::uint8_t> out,
                 std::optional<MemSide> exec_side = std::nullopt) const;
  DmoStatus write(ActorId actor, ObjId id, std::uint32_t offset,
                  std::span<const std::uint8_t> in,
                  std::optional<MemSide> exec_side = std::nullopt);
  /// dmo_memset.
  DmoStatus memset(ActorId actor, ObjId id, std::uint8_t value,
                   std::uint32_t offset, std::uint32_t len,
                   std::optional<MemSide> exec_side = std::nullopt);
  /// dmo_memcpy between two objects of the same actor.
  DmoStatus memcpy_obj(ActorId actor, ObjId dst, std::uint32_t dst_off,
                       ObjId src, std::uint32_t src_off, std::uint32_t len);

  /// dmo_migrate: move one object to the other side (payload travels with
  /// it; the caller charges the PCIe time).
  DmoStatus migrate(ActorId actor, ObjId id, MemSide to);

  /// Move *all* of an actor's objects to `to` (migration phase 3 /
  /// Fig. 18).  Partial failure (target region exhausted mid-loop) is
  /// reported, not swallowed: the result distinguishes payload bytes
  /// (what the caller charges PCIe time for) from padded allocator bytes
  /// (what the target region actually consumed) and counts stragglers.
  MigrateResult migrate_all(ActorId actor, MemSide to);

  /// Crash-consistent emergency evacuation: force every NIC-resident
  /// object of `actor` onto the host side *without* touching the (dead)
  /// NIC.  No PCIe transfer happens — with `mirror` the host mirror copy
  /// provides the bytes; without it the payload is zero-filled and
  /// reported lost.  The NIC-side allocator is wiped for those objects
  /// (the firmware's heap is gone anyway).
  EvacResult evacuate_all(ActorId actor, bool mirror);

  [[nodiscard]] const DmoRecord* find(ObjId id) const;
  [[nodiscard]] std::uint64_t actor_bytes(ActorId actor, MemSide side) const;
  [[nodiscard]] std::uint64_t actor_object_count(ActorId actor) const;
  /// Total resident bytes across an actor's live objects (working set).
  [[nodiscard]] std::uint64_t working_set(ActorId actor) const;

  // ---- tenant quota groups -------------------------------------------------
  /// Cap the combined DMO footprint of a set of actors: every member of
  /// quota group `group` charges its (padded) allocations against the
  /// shared `cap_bytes`; an alloc that would exceed the cap returns
  /// kQuotaExceeded instead of consuming region memory.  Unlike kNoMemory
  /// this is a policy denial, not capacity exhaustion — other groups'
  /// regions are untouched.  Re-calling updates the cap; group 0 = none.
  void set_quota(ActorId actor, std::uint32_t group, std::uint64_t cap_bytes);
  [[nodiscard]] std::uint64_t quota_used(std::uint32_t group) const noexcept;
  [[nodiscard]] std::uint64_t quota_cap(std::uint32_t group) const noexcept;
  /// Allocations denied with kQuotaExceeded.
  [[nodiscard]] std::uint64_t quota_denials() const noexcept {
    return quota_denials_;
  }

  [[nodiscard]] std::uint64_t traps() const noexcept { return traps_; }
  /// Accesses rejected with kWrongSide (remote-residency hits).  These
  /// are not isolation traps: the runtime normally retries them as
  /// DMA-charged remote accesses.
  [[nodiscard]] std::uint64_t wrong_side_hits() const noexcept {
    return wrong_side_hits_;
  }

  /// Optional event tracer (DMO traps + migrations land on tid::kDmo).
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  struct ActorRegion {
    RegionAllocator nic_alloc;
    RegionAllocator host_alloc;
    std::vector<ObjId> objects;
  };

  struct QuotaGroup {
    std::uint64_t cap = 0;
    std::uint64_t used = 0;
  };

  /// Bytes an object of `size` charges against its quota group — the
  /// padded allocator footprint, so quota accounting matches what the
  /// region actually loses.
  [[nodiscard]] static std::uint64_t quota_charge(std::uint32_t size) noexcept {
    const std::uint64_t raw = size == 0 ? 1 : size;
    return (raw + 15) & ~std::uint64_t{15};
  }
  [[nodiscard]] QuotaGroup* quota_of(ActorId actor);

  DmoRecord* find_mut(ObjId id);
  [[nodiscard]] RegionAllocator& allocator(ActorRegion& region, MemSide side) {
    return side == MemSide::kNic ? region.nic_alloc : region.host_alloc;
  }
  /// Count an isolation trap and trace it.
  DmoStatus trap(ActorId actor, DmoStatus status) const;

  std::unordered_map<ActorId, ActorRegion> regions_;
  std::unordered_map<ObjId, DmoRecord> objects_;
  std::unordered_map<std::uint32_t, QuotaGroup> quota_groups_;
  std::unordered_map<ActorId, std::uint32_t> actor_quota_;
  ObjId next_id_ = 1;
  mutable std::uint64_t traps_ = 0;
  mutable std::uint64_t wrong_side_hits_ = 0;
  std::uint64_t quota_denials_ = 0;
  std::uint64_t next_region_base_ = 0x10f0000000ULL;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace ipipe
