// Distributed transaction actors (§4): optimistic concurrency control
// with two-phase commit, following FaSST/TAPIR-style designs.
//
//   * CoordinatorActor — drives the 4-phase protocol, NIC-side; keeps the
//     coordinator log in a DMO-backed append region and offloads
//     checkpointing to the host-pinned LogActor.
//   * ParticipantActor — versioned key-value store (extendible DMO hash
//     table) with record locks, NIC-side.
//   * LogActor         — persistent logging / checkpointing, host-pinned.
//
// Protocol (§4 "Distributed Transactions"):
//   Phase 1 read+lock: read R, lock W (abort if anything is locked)
//   Phase 2 validate:  re-check R versions (abort on change/lock)
//   Phase 3 log:       append key/value/version to the coordinator log
//   Phase 4 commit:    participants apply W, bump versions, unlock
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/common/wire.h"
#include "apps/dt/hashtable.h"
#include "ipipe/runtime.h"

namespace ipipe::dt {

enum MsgType : std::uint16_t {
  kTxnRequest = 200,   // client -> coordinator
  kTxnReply = 201,     // coordinator -> client
  kRead = 210,         // coordinator -> participant (phase 1)
  kReadReply = 211,
  kLock = 212,         // coordinator -> participant (phase 1)
  kLockReply = 213,
  kValidate = 214,     // coordinator -> participant (phase 2)
  kValidateReply = 215,
  kCommit = 216,       // coordinator -> participant (phase 4)
  kCommitAck = 217,
  kAbortUnlock = 218,  // coordinator -> participant (abort path)
  kLogAppend = 220,    // coordinator -> log actor (phase 3)
  kLogAck = 221,
  kLogCheckpoint = 222,
};

enum class TxnStatus : std::uint8_t {
  kCommitted = 0,
  kAbortedLocked = 1,
  kAbortedValidation = 2,
  kError = 3,
};

struct TxnRead {
  netsim::NodeId node = 0;
  std::string key;
};
struct TxnWrite {
  netsim::NodeId node = 0;
  std::string key;
  std::vector<std::uint8_t> value;
};

/// Client transaction request: read set + write set.
struct TxnRequest {
  std::vector<TxnRead> reads;
  std::vector<TxnWrite> writes;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<TxnRequest> decode(
      std::span<const std::uint8_t> data);
};

struct TxnReply {
  TxnStatus status = TxnStatus::kCommitted;
  std::vector<std::vector<std::uint8_t>> read_values;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<TxnReply> decode(
      std::span<const std::uint8_t> data);
};

class ParticipantActor final : public Actor {
 public:
  ParticipantActor() : Actor("dt-participant") {}

  void init(ActorEnv& env) override { store_.create(env, 4); }
  void handle(ActorEnv& env, const netsim::Packet& req) override;

  [[nodiscard]] std::uint64_t region_bytes() const override { return 16 * MiB; }
  [[nodiscard]] const DmoHashTable& store() const noexcept { return store_; }
  /// Direct (test) access for seeding data.
  DmoHashTable& store_mut() noexcept { return store_; }

 private:
  DmoHashTable store_;
};

class LogActor final : public Actor {
 public:
  LogActor() : Actor("dt-log") {}

  [[nodiscard]] bool host_pinned() const override { return true; }
  void handle(ActorEnv& env, const netsim::Packet& req) override;

  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }
  [[nodiscard]] std::uint64_t checkpoints() const noexcept { return checkpoints_; }

 private:
  std::uint64_t appended_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t checkpoints_ = 0;
};

class CoordinatorActor final : public Actor {
 public:
  /// `participant_actor` is the participant actor id (identical on all
  /// storage nodes); `log_actor` is the local host-pinned logger.
  CoordinatorActor(ActorId participant_actor, ActorId log_actor,
                   std::uint64_t log_limit_bytes = 1 * MiB)
      : Actor("dt-coordinator"),
        participant_(participant_actor),
        log_actor_(log_actor),
        log_limit_(log_limit_bytes) {}

  void handle(ActorEnv& env, const netsim::Packet& req) override;

  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  [[nodiscard]] std::uint64_t aborted() const noexcept { return aborted_; }

 private:
  enum class Phase : std::uint8_t {
    kReadLock = 1,
    kValidate = 2,
    kLog = 3,
    kCommit = 4,
  };

  struct TxnState {
    TxnRequest request;
    netsim::Packet client;  // reply routing
    Phase phase = Phase::kReadLock;
    unsigned pending = 0;
    bool failed = false;
    std::vector<std::uint32_t> read_versions;
    std::vector<std::vector<std::uint8_t>> read_values;
    std::vector<std::uint32_t> write_versions;
    unsigned locks_held = 0;
  };

  void on_client(ActorEnv& env, const netsim::Packet& req);
  void on_read_reply(ActorEnv& env, const netsim::Packet& req);
  void on_lock_reply(ActorEnv& env, const netsim::Packet& req);
  void on_validate_reply(ActorEnv& env, const netsim::Packet& req);
  void on_log_ack(ActorEnv& env, const netsim::Packet& req);
  void on_commit_ack(ActorEnv& env, const netsim::Packet& req);
  void phase1_maybe_done(ActorEnv& env, std::uint64_t txn_id);
  void begin_validate(ActorEnv& env, std::uint64_t txn_id, TxnState& txn);
  void begin_log(ActorEnv& env, std::uint64_t txn_id, TxnState& txn);
  void begin_commit(ActorEnv& env, std::uint64_t txn_id, TxnState& txn);
  void abort(ActorEnv& env, std::uint64_t txn_id, TxnState& txn,
             TxnStatus status);
  void finish(ActorEnv& env, std::uint64_t txn_id, TxnState& txn,
              TxnStatus status);
  void charge_coord(ActorEnv& env) const;

  ActorId participant_;
  ActorId log_actor_;
  std::uint64_t log_limit_;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t next_txn_ = 1;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::unordered_map<std::uint64_t, TxnState> txns_;
};

/// One node's DT deployment.
struct DtDeployment {
  ActorId participant = 0;
  ActorId coordinator = 0;
  ActorId log = 0;
};

/// Register participant + log (+ coordinator when `with_coordinator`) in a
/// fixed order so actor ids agree across nodes.
[[nodiscard]] DtDeployment deploy_dt(Runtime& rt, bool with_coordinator);

}  // namespace ipipe::dt
