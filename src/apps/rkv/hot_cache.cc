#include "apps/rkv/hot_cache.h"

#include <utility>

namespace ipipe::rkv {
namespace {

[[nodiscard]] std::vector<std::uint8_t> epoch_bytes(std::uint64_t epoch) {
  wire::Writer w;
  w.put(epoch);
  return w.take();
}

}  // namespace

bool HotKeyCacheActor::owns(const std::string& key) const {
  if (num_shards_ == 0) return true;
  return owned_.count(shard::shard_of_key(key, num_shards_)) != 0;
}

void HotKeyCacheActor::bump_gen(const std::string& key) {
  const auto it = miss_gen_.find(key);
  if (it != miss_gen_.end()) ++it->second.first;
}

void HotKeyCacheActor::release_gen(const std::string& key) {
  const auto it = miss_gen_.find(key);
  if (it != miss_gen_.end() && --it->second.second == 0) miss_gen_.erase(it);
}

void HotKeyCacheActor::wipe() {
  cache_ = nf::KvCache(params_.buckets, params_.capacity_bytes);
  pending_.clear();
  pending_order_.clear();
  miss_gen_.clear();
  lease_until_ = 0;
  ++wipes_;
}

void HotKeyCacheActor::reset(ActorEnv& env) {
  (void)env;
  wipe();
  // Shard config falls back to the deployment baseline; config ops in
  // the log re-apply through consensus catch-up (kShardUpdate).
  owned_.clear();
  owned_.insert(params_.owned_shards.begin(), params_.owned_shards.end());
  num_shards_ = params_.num_shards;
  epoch_ = params_.epoch;
}

void HotKeyCacheActor::handle(ActorEnv& env, const netsim::Packet& req) {
  switch (req.msg_type) {
    case kClientGet:
      on_get(env, req);
      break;
    case kClientPut:
    case kClientDel:
      // Writes pass through untouched: forward() preserves the request
      // id so the leader's dedup table still recognizes retransmits.
      env.compute(80);
      env.forward(consensus_, env.clone_packet(req));
      break;
    case kClientReply:
      on_reply(env, req);
      break;
    case kCacheInval:
      on_inval(env, req);
      break;
    case kLeaseGrant: {
      wire::Reader r(req.payload);
      std::uint64_t until = 0;
      if (r.get(until)) lease_until_ = std::max(lease_until_, until);
      break;
    }
    case kShardUpdate:
      on_shard_update(req);
      break;
    default:
      break;
  }
}

void HotKeyCacheActor::on_get(ActorEnv& env, const netsim::Packet& req) {
  const auto creq = ClientReq::decode(req.payload);
  if (!creq || consensus_ == 0) return;
  if (creq->op != Op::kGet) {
    env.forward(consensus_, env.clone_packet(req));
    return;
  }

  if (!owns(creq->key)) {
    // Stale client route: reject immediately with our epoch so the
    // client re-resolves instead of waiting out a timeout.
    ++wrong_shard_;
    env.compute(120);
    env.reply(req, kClientReply,
              ClientReply{Status::kWrongShard, epoch_bytes(epoch_)}.encode());
    return;
  }

  const bool leased = !params_.require_lease || env.now() < lease_until_;
  if (leased) {
    nf::KvCache::OpStats stats;
    const auto value = cache_.get(creq->key, &stats);
    env.compute(250);
    env.mem(std::max<std::uint64_t>(cache_.memory_bytes(), 4096),
            stats.probes + 1);
    if (value) {
      ++hits_;
      env.reply(req, kClientReply,
                ClientReply{Status::kOk, std::vector<std::uint8_t>(
                                             value->begin(), value->end())}
                    .encode());
      return;
    }
  } else {
    ++lease_misses_;
  }

  // Miss (or no lease): forward to consensus with the reply routed back
  // through this actor, so the value fills the cache on the way out.
  ++misses_;
  const auto existing = pending_.find(req.request_id);
  if (existing == pending_.end()) {
    auto& gen = miss_gen_[creq->key];
    ++gen.second;
    PendingFill pf;
    pf.reply = ReplyTo{req.src, req.src_actor, req.request_id, req.created_at};
    pf.key = creq->key;
    pf.gen = gen.first;
    pf.fillable = true;
    pending_.emplace(req.request_id, std::move(pf));
    pending_order_.push_back(req.request_id);
    while (pending_.size() > params_.pending_cap && !pending_order_.empty()) {
      const std::uint64_t old = pending_order_.front();
      pending_order_.pop_front();
      const auto it = pending_.find(old);
      if (it != pending_.end()) {
        release_gen(it->second.key);
        pending_.erase(it);
      }
    }
  }
  // else: retransmit of an in-flight miss — re-forward, keep the first
  // pending entry (first reply wins, duplicates are dropped upstream).

  wire::Writer w;
  const ReplyTo via{env.node(), env.self(), req.request_id, req.created_at};
  via.encode(w);
  w.put_str(creq->key);
  env.local_send(consensus_, kCacheGet, w.take());
}

void HotKeyCacheActor::on_reply(ActorEnv& env, const netsim::Packet& req) {
  const auto it = pending_.find(req.request_id);
  if (it == pending_.end()) return;  // late duplicate; client already served
  PendingFill pf = std::move(it->second);
  pending_.erase(it);

  const auto rep = ClientReply::decode(req.payload);
  env.compute(150);
  if (rep && pf.fillable && rep->status == Status::kOk) {
    const auto gen = miss_gen_.find(pf.key);
    if (gen != miss_gen_.end() && gen->second.first == pf.gen) {
      const auto stats = cache_.put(
          pf.key, std::string(rep->value.begin(), rep->value.end()));
      env.mem(std::max<std::uint64_t>(cache_.memory_bytes(), 4096),
              stats.probes + 1);
      ++fills_;
    } else {
      // An invalidation for this key landed while the fill was in
      // flight: installing now could resurrect a stale value.
      ++stale_fills_dropped_;
    }
  }
  release_gen(pf.key);

  // Relay to the original client with its request id / timestamps.
  env.reply(pf.reply.as_request(), kClientReply,
            std::vector<std::uint8_t>(req.payload.begin(), req.payload.end()));
}

void HotKeyCacheActor::on_inval(ActorEnv& env, const netsim::Packet& req) {
  if (params_.inject_stale_cache) return;  // injected bug: drop write-through
  wire::Reader r(req.payload);
  std::uint8_t op = 0;
  std::string key;
  std::vector<std::uint8_t> value;
  if (!r.get(op) || !r.get_str(key) || !r.get_bytes(value)) return;
  bump_gen(key);  // racing miss fills must not clobber this apply
  ++invals_;
  env.compute(200);
  if (static_cast<Op>(op) == Op::kPut) {
    // Write-through: install the applied value (keeps hot keys hot
    // across their own writes; on followers this pre-warms the cache a
    // future leader will serve from).
    const auto stats =
        cache_.put(key, std::string(value.begin(), value.end()));
    env.mem(std::max<std::uint64_t>(cache_.memory_bytes(), 4096),
            stats.probes + 1);
  } else {
    cache_.del(key);
    env.mem(std::max<std::uint64_t>(cache_.memory_bytes(), 4096), 2);
  }
}

void HotKeyCacheActor::on_shard_update(const netsim::Packet& req) {
  const auto view = ShardView::decode(req.payload);
  if (!view || view->epoch < epoch_) return;
  epoch_ = view->epoch;
  num_shards_ = view->num_shards;
  owned_.clear();
  owned_.insert(view->owned.begin(), view->owned.end());
  // Drop entries for shards we no longer own: if ownership ever came
  // back, a frozen copy from before the move could serve stale.
  cache_.prune([this](const std::string& key) { return owns(key); });
}

}  // namespace ipipe::rkv
