#include "nic/nic_model.h"

#include <cassert>

#include "common/logging.h"

namespace ipipe::nic {

Ns NicExecContext::now() const noexcept { return nic_.sim().now(); }

void NicExecContext::charge_cycles(double cycles) noexcept {
  consumed_ += static_cast<Ns>(nic_.config().cycles_to_ns(cycles));
}

void NicExecContext::mem(std::uint64_t working_set, std::uint64_t n) noexcept {
  consumed_ += nic_.cache().chase_ns(working_set, n);
}

void NicExecContext::stream(std::uint64_t working_set, std::uint64_t bytes) noexcept {
  consumed_ += nic_.cache().stream_ns(working_set, bytes);
}

void NicExecContext::accel(AccelKind kind, std::uint32_t bytes,
                           std::uint32_t batch) noexcept {
  consumed_ += nic_.accel().batch_cost(kind, bytes, batch);
  nic_.accel().record_use(kind, batch);
}

void NicExecContext::charge_forwarding(std::uint32_t frame_size) noexcept {
  consumed_ += nic_.config().forwarding.cost(frame_size);
}

void NicExecContext::charge_nstack(std::uint32_t frame_size) noexcept {
  const auto& cfg = nic_.config();
  consumed_ += static_cast<Ns>(cfg.nstack_base_ns +
                               cfg.nstack_per_byte_ns * frame_size);
}

void NicExecContext::dma_read_blocking(std::uint32_t bytes) noexcept {
  consumed_ += nic_.dma().blocking_read_latency(bytes);
}

void NicExecContext::dma_write_blocking(std::uint32_t bytes) noexcept {
  consumed_ += nic_.dma().blocking_write_latency(bytes);
}

NicModel::NicModel(sim::Simulation& sim, NicConfig cfg, netsim::Network& net,
                   netsim::NodeId node)
    : sim_(sim),
      cfg_(std::move(cfg)),
      net_(net),
      node_(node),
      dma_(sim, cfg_.dma),
      cache_(CacheModel::for_nic(cfg_)),
      active_cores_(cfg_.cores),
      cores_(cfg_.cores) {
  net_.attach(node_, *this, cfg_.link_gbps);
  tm_.set_notify([this] { wake_all(); });
}

void NicModel::set_firmware(NicFirmware* fw) {
  firmware_ = fw;
  if (firmware_) {
    firmware_->attached(*this);
    wake_all();
  }
}

void NicModel::set_active_cores(unsigned n) noexcept {
  assert(n <= cfg_.cores);
  active_cores_ = n;
}

void NicModel::receive(netsim::PacketPtr pkt) {
  ++rx_frames_;

  // Dumb NIC: straight to the host RX ring via DMA.
  if (cfg_.cores == 0 || firmware_ == nullptr) {
    deliver_to_host(std::move(pkt));
    return;
  }

  if (cfg_.path == NicPath::kOffPath) {
    // NIC-switch steering: only flows with a NIC-side rule visit cores.
    const bool to_nic = steer_to_nic_ && steer_to_nic_(*pkt);
    if (!to_nic) {
      deliver_to_host(std::move(pkt));
      return;
    }
  }
  admit(std::move(pkt));
}

void NicModel::admit(netsim::PacketPtr pkt) {
  // Stamp NIC entry time: host-originated frames (transmit path) have no
  // wire-delivery timestamp, and response-time accounting needs one.
  pkt->nic_arrival = sim_.now();
  // NIC-wide packet-rate ceiling: arrivals are paced at max_pps.
  const Ns gap = static_cast<Ns>(1e9 / cfg_.max_pps);
  const Ns now = sim_.now();
  if (next_admit_ <= now) {
    next_admit_ = now + gap;
    tm_.push(std::move(pkt));
  } else {
    const Ns when = next_admit_;
    next_admit_ += gap;
    auto shared = std::make_shared<netsim::PacketPtr>(std::move(pkt));
    sim_.schedule_at(when, [this, shared] { tm_.push(std::move(*shared)); });
  }
}

void NicModel::host_tx(netsim::PacketPtr pkt) {
  pkt->from_host = true;
  // The NIC pulls the frame from host memory over PCIe, then hands it to
  // the normal processing path (on-path) or straight to the MAC.
  const Ns dma_delay = dma_.blocking_read_latency(pkt->frame_size);
  auto shared = std::make_shared<netsim::PacketPtr>(std::move(pkt));
  sim_.schedule(dma_delay, [this, shared] {
    netsim::PacketPtr p = std::move(*shared);
    if (cfg_.cores == 0 || firmware_ == nullptr ||
        cfg_.path == NicPath::kOffPath) {
      wire_tx(std::move(p));
    } else {
      admit(std::move(p));
    }
  });
}

void NicModel::wire_tx(netsim::PacketPtr pkt) {
  ++tx_frames_;
  pkt->src = node_;
  net_.send(std::move(pkt));
}

void NicModel::deliver_to_host(netsim::PacketPtr pkt) {
  ++to_host_frames_;
  const Ns dma_delay = dma_.blocking_write_latency(pkt->frame_size);
  auto shared = std::make_shared<netsim::PacketPtr>(std::move(pkt));
  sim_.schedule(dma_delay, [this, shared] {
    if (host_rx_) {
      host_rx_(std::move(*shared));
    }
  });
}

void NicModel::wake_core(unsigned core) {
  if (core >= active_cores_) return;
  CoreState& st = cores_[core];
  if (!st.parked || st.executing) return;
  st.parked = false;
  sim_.schedule(0, [this, core] { run_core(core); });
}

void NicModel::wake_all() {
  for (unsigned i = 0; i < active_cores_; ++i) wake_core(i);
}

void NicModel::wake_core_at(unsigned core, Ns when) {
  sim_.schedule_at(when, [this, core] { wake_core(core); });
}

void NicModel::run_core(unsigned core) {
  if (core >= active_cores_ || firmware_ == nullptr) {
    cores_[core].parked = true;
    return;
  }
  CoreState& st = cores_[core];
  if (st.executing) return;

  auto ctx = std::make_unique<NicExecContext>(*this, core);
  const bool did_work = firmware_->run_once(*ctx, core);
  if (!did_work) {
    st.parked = true;
    return;
  }
  st.executing = true;
  const Ns cost = ctx->consumed();
  st.busy_total += cost;
  auto shared = std::make_shared<std::unique_ptr<NicExecContext>>(std::move(ctx));
  sim_.schedule(cost, [this, core, shared] {
    retire(core, std::move(*shared));
  });
}

void NicModel::retire(unsigned core, std::unique_ptr<NicExecContext> ctx) {
  for (auto& pkt : ctx->tx_queue_) wire_tx(std::move(pkt));
  for (auto& pkt : ctx->host_queue_) deliver_to_host(std::move(pkt));
  for (auto& fn : ctx->deferred_) fn();
  cores_[core].executing = false;
  run_core(core);
}

Ns NicModel::total_busy_ns() const noexcept {
  Ns total = 0;
  for (const auto& core : cores_) total += core.busy_total;
  return total;
}

}  // namespace ipipe::nic
