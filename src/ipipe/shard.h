// Consistent-hash sharding of a keyspace across independent replica
// groups (the scale-out layer over per-group Multi-Paxos).
//
// Two-level mapping, the classic design:
//   key  -> shard  : fixed modulus over a stable 64-bit key hash.  The
//                    shard count never changes at runtime, so a key's
//                    shard is a pure function of its bytes.
//   shard -> group : consistent hashing with virtual nodes.  Each group
//                    contributes `vnodes` points on a 64-bit ring; a
//                    shard is owned by the first vnode clockwise from
//                    its own ring point.  Adding or removing one group
//                    moves only the shards whose successor vnode
//                    changed — the deterministic minimal rebalance.
//
// Everything here is pure data + hashing: no simulator, no actors, no
// wire formats (those live in the application layer).  Route tables are
// epoch-stamped snapshots; clients route with a table and retry on the
// server's wrong-shard rejection until their table catches up.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <set>
#include <string_view>
#include <vector>

namespace ipipe::shard {

/// Sentinel owner for a shard with no group on the ring.
inline constexpr std::uint32_t kNoOwner = 0xFFFFFFFFu;

/// FNV-1a over arbitrary bytes — the one hash every layer (ring, server
/// ownership check, client router, sampling filters) must agree on.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// 64-bit mix for integer ring points (splitmix64 finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// key -> shard.  Stable for the lifetime of a deployment.
[[nodiscard]] constexpr std::uint32_t shard_of_key(
    std::string_view key, std::uint32_t num_shards) noexcept {
  return num_shards == 0
             ? 0
             : static_cast<std::uint32_t>(fnv1a64(key) % num_shards);
}

/// Epoch-stamped shard -> group snapshot.  Clients route with one of
/// these; servers reject ops for shards they no longer own and the
/// client retries against a fresher table (stale-route retry).
struct RouteTable {
  std::uint64_t epoch = 0;
  std::uint32_t num_shards = 0;
  std::vector<std::uint32_t> owner;  ///< shard -> group (kNoOwner = none)

  [[nodiscard]] std::uint32_t group_of(std::uint32_t shard) const noexcept {
    return shard < owner.size() ? owner[shard] : kNoOwner;
  }
  [[nodiscard]] std::uint32_t group_of_key(std::string_view key) const noexcept {
    return group_of(shard_of_key(key, num_shards));
  }
  /// Shards owned by `group` (ascending).
  [[nodiscard]] std::vector<std::uint32_t> shards_of(
      std::uint32_t group) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t s = 0; s < owner.size(); ++s) {
      if (owner[s] == group) out.push_back(s);
    }
    return out;
  }
  /// Shards whose owner differs between two tables (the rebalance set).
  [[nodiscard]] static std::vector<std::uint32_t> moved(const RouteTable& from,
                                                        const RouteTable& to) {
    std::vector<std::uint32_t> out;
    const std::size_t n = std::min(from.owner.size(), to.owner.size());
    for (std::uint32_t s = 0; s < n; ++s) {
      if (from.owner[s] != to.owner[s]) out.push_back(s);
    }
    return out;
  }
};

/// The consistent-hash ring.  Deterministic: same groups added in any
/// order produce the same ownership (ring points are pure functions of
/// group id and vnode index; ties break toward the smaller group id via
/// the map key ordering).
class ShardRing {
 public:
  explicit ShardRing(std::uint32_t num_shards, std::uint32_t vnodes = 64)
      : num_shards_(num_shards), vnodes_(vnodes) {}

  void add_group(std::uint32_t group);
  void remove_group(std::uint32_t group);
  [[nodiscard]] bool has_group(std::uint32_t group) const {
    return groups_.count(group) != 0;
  }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups_.size();
  }
  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return num_shards_;
  }

  /// First vnode clockwise from the shard's ring point.
  [[nodiscard]] std::uint32_t owner_of(std::uint32_t shard) const;

  /// Snapshot the full shard -> group mapping under `epoch`.
  [[nodiscard]] RouteTable table(std::uint64_t epoch) const;

 private:
  std::uint32_t num_shards_;
  std::uint32_t vnodes_;
  /// (ring point, group) -> group.  The composite key makes point
  /// collisions between groups deterministic instead of order-dependent.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint32_t> ring_;
  std::set<std::uint32_t> groups_;
};

}  // namespace ipipe::shard
