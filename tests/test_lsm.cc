#include <gtest/gtest.h>

#include <map>

#include "apps/rkv/lsm.h"
#include "common/rng.h"

namespace ipipe::rkv {
namespace {

std::vector<std::uint8_t> val(const std::string& s) {
  return {s.begin(), s.end()};
}

std::vector<SstEntry> sorted_entries(
    std::initializer_list<std::pair<std::string, std::string>> kvs) {
  std::vector<SstEntry> entries;
  for (const auto& [k, v] : kvs) entries.push_back({k, val(v), false});
  std::sort(entries.begin(), entries.end(),
            [](const SstEntry& a, const SstEntry& b) { return a.key < b.key; });
  return entries;
}

TEST(SsTable, BinarySearchLookup) {
  SsTable table(sorted_entries({{"a", "1"}, {"c", "3"}, {"e", "5"}}));
  SsTable::LookupStats stats;
  const auto* e = table.get("c", &stats);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, val("3"));
  EXPECT_GT(stats.probes, 0u);
  EXPECT_EQ(table.get("b"), nullptr);
  EXPECT_EQ(table.get("z"), nullptr);
}

TEST(LsmTree, NewestTableWinsInL0) {
  LsmTree lsm;
  lsm.add_l0(sorted_entries({{"k", "old"}}));
  lsm.add_l0(sorted_entries({{"k", "new"}}));
  EXPECT_EQ(lsm.get("k").value(), val("new"));
}

TEST(LsmTree, TombstoneHidesOlderValue) {
  LsmTree lsm;
  lsm.add_l0(sorted_entries({{"k", "value"}}));
  std::vector<SstEntry> del{{"k", {}, true}};
  lsm.add_l0(std::move(del));
  EXPECT_FALSE(lsm.get("k").has_value());
}

TEST(LsmTree, CompactionPreservesData) {
  LsmTree::Config cfg;
  cfg.level0_bytes = 512;
  cfg.level0_max_tables = 2;
  LsmTree lsm(cfg);
  std::map<std::string, std::string> oracle;
  Rng rng(10);
  for (int batch = 0; batch < 30; ++batch) {
    std::vector<SstEntry> entries;
    for (int i = 0; i < 20; ++i) {
      const std::string k = "key" + std::to_string(rng.uniform_u64(200));
      const std::string v = "v" + std::to_string(batch) + "_" + std::to_string(i);
      entries.push_back({k, val(v), false});
    }
    std::sort(entries.begin(), entries.end(),
              [](const SstEntry& a, const SstEntry& b) { return a.key < b.key; });
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const SstEntry& a, const SstEntry& b) {
                                return a.key == b.key;
                              }),
                  entries.end());
    for (const auto& e : entries) {
      oracle[e.key] = std::string(e.value.begin(), e.value.end());
    }
    lsm.add_l0(std::move(entries));
    lsm.maybe_compact();
  }
  EXPECT_GT(lsm.compactions(), 0u);
  for (const auto& [k, v] : oracle) {
    const auto got = lsm.get(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, val(v)) << k;
  }
}

TEST(LsmTree, CompactionDropsTombstonesAtBottom) {
  LsmTree::Config cfg;
  cfg.level0_bytes = 64;
  cfg.level0_max_tables = 1;
  cfg.max_levels = 3;
  LsmTree lsm(cfg);
  lsm.add_l0(sorted_entries({{"a", "1"}, {"b", "2"}}));
  std::vector<SstEntry> del{{"a", {}, true}};
  lsm.add_l0(std::move(del));
  lsm.maybe_compact();
  EXPECT_FALSE(lsm.get("a").has_value());
  EXPECT_TRUE(lsm.get("b").has_value());
}

TEST(MergeRuns, NewestWinsDedup) {
  const std::vector<SstEntry> newer{{"a", val("new"), false},
                                    {"b", val("b1"), false}};
  const std::vector<SstEntry> older{{"a", val("old"), false},
                                    {"c", val("c1"), false}};
  const auto merged = merge_runs({&newer, &older}, false);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, "a");
  EXPECT_EQ(merged[0].value, val("new"));
  EXPECT_EQ(merged[1].key, "b");
  EXPECT_EQ(merged[2].key, "c");
}

TEST(LsmTree, GetStatsCountProbes) {
  LsmTree lsm;
  std::vector<SstEntry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back({"key" + std::to_string(1000 + i), val("v"), false});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SstEntry& a, const SstEntry& b) { return a.key < b.key; });
  lsm.add_l0(std::move(entries));
  LsmTree::GetStats stats;
  EXPECT_TRUE(lsm.get("key1050", &stats).has_value());
  EXPECT_GE(stats.probes, 5u);
  EXPECT_EQ(stats.tables_probed, 1u);
}

}  // namespace
}  // namespace ipipe::rkv
