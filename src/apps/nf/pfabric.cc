#include "apps/nf/pfabric.h"

namespace ipipe::nf {

std::size_t PFabricScheduler::enqueue(const Entry& e) {
  std::size_t visits = 1;
  std::unique_ptr<Node>* slot = &root_;
  while (*slot) {
    ++visits;
    const bool less = e.remaining < (*slot)->entry.remaining ||
                      (e.remaining == (*slot)->entry.remaining &&
                       e.flow_id < (*slot)->entry.flow_id);
    slot = less ? &(*slot)->left : &(*slot)->right;
  }
  *slot = std::make_unique<Node>();
  (*slot)->entry = e;
  ++size_;
  last_visits_ = visits;
  return visits;
}

std::optional<PFabricScheduler::Entry> PFabricScheduler::dequeue() {
  if (!root_) return std::nullopt;
  std::size_t visits = 1;
  std::unique_ptr<Node>* slot = &root_;
  while ((*slot)->left) {
    ++visits;
    slot = &(*slot)->left;
  }
  const Entry e = (*slot)->entry;
  *slot = std::move((*slot)->right);
  --size_;
  last_visits_ = visits;
  return e;
}

std::optional<PFabricScheduler::Entry> PFabricScheduler::drop_lowest() {
  if (!root_) return std::nullopt;
  std::size_t visits = 1;
  std::unique_ptr<Node>* slot = &root_;
  while ((*slot)->right) {
    ++visits;
    slot = &(*slot)->right;
  }
  const Entry e = (*slot)->entry;
  *slot = std::move((*slot)->left);
  --size_;
  last_visits_ = visits;
  return e;
}

}  // namespace ipipe::nf
