// Network fabric: endpoints attached to a single ToR switch via
// full-duplex links, with store-and-forward timing and optional fault
// injection (drop / duplicate / reorder) for protocol robustness tests.
//
// Timing model for a frame from A to B:
//   serialize on A's uplink (contended) -> switch latency ->
//   serialize on B's downlink (contended) -> deliver.
// Each link direction has independent busy-until bookkeeping, so incast
// on a receiver's downlink queues realistically.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "netsim/packet.h"
#include "sim/simulation.h"

namespace ipipe::netsim {

/// Anything that can be attached to the fabric and receive frames.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Called when a frame has fully arrived at this endpoint's port.
  virtual void receive(PacketPtr pkt) = 0;
};

/// Fault-injection knobs, all off by default.
struct FaultModel {
  double drop_prob = 0.0;       ///< iid frame loss
  double dup_prob = 0.0;        ///< iid frame duplication
  Ns reorder_jitter = 0;        ///< uniform extra delay in [0, jitter]
};

class Network {
 public:
  Network(sim::Simulation& sim, Ns switch_latency = 300 /*ns*/)
      : sim_(sim),
        pool_(PacketPool::local()),
        switch_latency_(switch_latency),
        rng_(0xFAB51Cull) {}

  /// Attach `ep` as `node` with a full-duplex link of `gbps`.
  void attach(NodeId node, Endpoint& ep, double gbps);

  /// Detach (e.g. simulate node failure); in-flight frames to it are lost.
  void detach(NodeId node);

  /// Inject a frame into the fabric from `pkt->src`.  Takes ownership.
  void send(PacketPtr pkt);

  void set_fault_model(const FaultModel& fm) noexcept { faults_ = fm; }
  [[nodiscard]] const FaultModel& fault_model() const noexcept { return faults_; }

  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }
  [[nodiscard]] std::uint64_t frames_delivered() const noexcept {
    return frames_delivered_;
  }
  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  /// Packet arena shared by this fabric's endpoints (workload clients
  /// draw their request frames from here).
  [[nodiscard]] PacketPool& pool() noexcept { return pool_; }

 private:
  struct PortState {
    Endpoint* ep = nullptr;
    double gbps = 10.0;
    Ns tx_busy_until = 0;  // uplink (endpoint -> switch)
    Ns rx_busy_until = 0;  // downlink (switch -> endpoint)
  };

  void deliver(PacketPtr pkt, Ns extra_delay);

  sim::Simulation& sim_;
  PacketPool& pool_;
  Ns switch_latency_;
  Rng rng_;
  FaultModel faults_;
  std::unordered_map<NodeId, PortState> ports_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_delivered_ = 0;
};

}  // namespace ipipe::netsim
