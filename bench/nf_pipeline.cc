// Composable NF pipelines on pooled SmartNICs.
//   (1) NicPool placement: measured per-stage costs price each pipeline
//       per card; pipelines land whole on one NIC (least resulting
//       utilization under the saturation threshold, spillover beyond).
//   (2) Chain-depth x NIC sweep: text-spec pipelines of depth 1-6 run on
//       heterogeneous cards; goodput, latency and egress accounting per
//       point.  Cross-stage packet-order preservation is asserted — any
//       order violation fails the bench with a nonzero exit.
//
// Flags: --spec=<pipeline> overrides the reference 4-stage chain;
// --jobs=N parallelizes the sweep (stdout stays byte-identical);
// --bench-json=<path> emits the perf baseline; --trace-out=<path>
// captures the deepest chain's run.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/sweep.h"
#include "harness/trace_opts.h"
#include "nfp/nic_pool.h"
#include "nfp/pipeline.h"
#include "nfp/spec.h"
#include "testbed/cluster.h"

using namespace ipipe;

namespace {

constexpr const char* kDefaultSpec =
    "firewall(128) | ratelimit(2Gbps) | maglev(8) | counter";

/// Reference chains for the depth sweep (the depth-4 entry is replaced
/// by --spec= when given).
struct Chain {
  std::size_t depth;
  std::string text;
};

std::vector<Chain> sweep_chains(const std::string& spec4) {
  return {
      {1, "counter"},
      {2, "firewall(128) | counter"},
      {4, spec4},
      // The deep chain is deliberately hostile to ordering: the rate
      // limiter is oversubscribed at the sweep's offered load (drops ->
      // tombstones) and pFabric dequeues by priority (reorders), so the
      // egress reorder point is exercised for real.
      {6,
       "firewall(128) | ratelimit(500Mbps) | maglev(8) | "
       "pfabric(cap=256,quantum=8) | classify | counter"},
  };
}

struct SweepCard {
  const char* label;
  nic::NicConfig (*make)();
};

constexpr SweepCard kCards[] = {
    {"cn2350", nic::liquidio_cn2350},
    {"stingray", nic::stingray_ps225},
};

struct PipePoint {
  std::string chain_label;
  std::string card;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t tombstones = 0;
  std::uint64_t order_violations = 0;
  double mean_us = 0.0;
  double p99_us = 0.0;
  double kpps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::TraceOpts trace = bench::parse_trace_opts(argc, argv);
  const bench::SweepOpts sweep_opts = bench::parse_sweep_opts(argc, argv);
  std::string spec4 = kDefaultSpec;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--spec=", 7) == 0) spec4 = argv[i] + 7;
  }
  bench::SweepRunner runner(sweep_opts);

  const auto chains = sweep_chains(spec4);

  // ---- NicPool placement across pool sizes ------------------------------
  // Place the four reference chains (at 100 kpps each) onto pools of 1-3
  // heterogeneous cards; the per-card measured cost drives the decision.
  std::printf("NF pipeline placement: per-stage measured cost, one-NIC "
              "semantics, saturation %.2f\n",
              nfp::NicPool{}.saturation());
  for (std::size_t pool_size = 1; pool_size <= 3; ++pool_size) {
    nfp::NicPool pool;
    pool.add_nic("cn2350", nic::liquidio_cn2350());
    if (pool_size >= 2) pool.add_nic("stingray", nic::stingray_ps225());
    if (pool_size >= 3) pool.add_nic("cn2360", nic::liquidio_cn2360());
    std::printf("\npool of %zu NIC%s:\n", pool_size,
                pool_size == 1 ? "" : "s");
    TablePrinter table(
        {"pipeline", "depth", "placed on", "ns/pkt", "util+", "spilled"});
    for (const auto& chain : chains) {
      const auto spec = nfp::parse_pipeline(chain.text);
      const auto p = pool.place(spec, /*offered_pps=*/100e3);
      table.add_row({spec.text.size() > 38 ? spec.text.substr(0, 35) + "..."
                                           : spec.text,
                     strf("%zu", spec.depth()),
                     pool.nics()[p.nic].name,
                     strf("%.0f", p.cost.total_ns_per_pkt),
                     strf("%.3f", p.utilization_added),
                     p.spilled ? "YES" : "no"});
    }
    table.print();
    for (const auto& n : pool.nics()) {
      std::printf("  %-9s utilization %.3f (%zu pipeline%s)\n",
                  n.name.c_str(), n.utilization, n.pipelines,
                  n.pipelines == 1 ? "" : "s");
    }
  }

  // ---- chain depth x card sweep -----------------------------------------
  // Each point: one server with the card, the chain as an actor group on
  // its NIC, one open-loop client.  Points are independent simulations,
  // so the sweep parallelizes under --jobs without changing a byte.
  struct PointSpec {
    const Chain* chain;
    const SweepCard* card;
  };
  std::vector<PointSpec> points;
  for (const auto& chain : chains) {
    for (const auto& card : kCards) points.push_back({&chain, &card});
  }

  const auto results = runner.map(
      points.size(), [&](std::size_t i, bench::PointPerf& perf) {
        const auto& chain = *points[i].chain;
        const auto& card = *points[i].card;
        perf.label = strf("depth=%zu %s", chain.depth, card.label);

        testbed::Cluster cluster;
        testbed::ServerSpec sspec;
        sspec.nic = card.make();
        const bool traced =
            trace.enabled() && chain.depth == 6 && i + 1 == points.size();
        if (traced) trace.apply(sspec.ipipe);
        auto& server = cluster.add_server(sspec);
        const auto spec = nfp::parse_pipeline(chain.text);
        nfp::PipelineRunner pipeline(server.runtime(), spec);

        auto& client = cluster.add_client(
            sspec.nic.link_gbps,
            [ingress = pipeline.ingress()](std::uint64_t, Rng&,
                                           netsim::PacketPool& pool) {
              auto pkt = pool.make();
              pkt->dst = 0;
              pkt->dst_actor = ingress;
              pkt->msg_type = nfp::kNfData;
              pkt->frame_size = 512;
              pkt->payload.assign(32, 0x5A);
              return pkt;
            });
        client.set_warmup(msec(5));
        client.start_open_loop(/*rate_rps=*/150e3, msec(25), /*poisson=*/true);
        cluster.run_until(msec(35));
        if (traced) bench::write_cluster_trace(trace, cluster, "nfp/sweep");
        bench::fill_perf(perf, cluster);

        const auto eg = pipeline.egress_stats();
        PipePoint out;
        out.chain_label = strf("depth=%zu", chain.depth);
        out.card = card.label;
        out.sent = client.sent();
        out.delivered = eg.delivered;
        out.tombstones = eg.tombstones;
        out.order_violations = eg.order_violations;
        out.mean_us = client.latencies().mean_ns() / 1000.0;
        out.p99_us = to_us(client.latencies().p99());
        const double window = to_sec(client.last_completion() -
                                     client.first_measured_completion());
        out.kpps = window > 0 ? static_cast<double>(
                                    client.completed_after_warmup()) /
                                    window / 1e3
                              : 0.0;
        return out;
      });

  std::printf(
      "\nchain depth x card sweep: 512B packets, open loop 150 kpps, "
      "order preservation asserted\n");
  TablePrinter table({"chain", "card", "sent", "delivered", "tombstones",
                      "kpps", "avg(us)", "p99(us)", "ord-viol"});
  std::uint64_t violations = 0;
  for (const auto& r : results) {
    violations += r.order_violations;
    table.add_row({r.chain_label, r.card, strf("%llu",
                       static_cast<unsigned long long>(r.sent)),
                   strf("%llu", static_cast<unsigned long long>(r.delivered)),
                   strf("%llu", static_cast<unsigned long long>(r.tombstones)),
                   strf("%.1f", r.kpps), strf("%.2f", r.mean_us),
                   strf("%.2f", r.p99_us),
                   strf("%llu",
                        static_cast<unsigned long long>(r.order_violations))});
  }
  table.print();
  runner.write_json("nf_pipeline");

  if (violations != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu cross-stage packet-order violations — the "
                 "egress reorder point must release every source's "
                 "sequence monotonically\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  std::printf("order preservation: OK (0 violations across %zu points)\n",
              results.size());
  return 0;
}
