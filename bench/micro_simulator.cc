// google-benchmark microbenchmarks of the simulator itself: event-queue
// throughput and end-to-end simulated-seconds-per-wallclock-second for a
// loaded node — documents the cost of running the reproduction.
#include <benchmark/benchmark.h>

#include "ipipe/runtime.h"
#include "sim/simulation.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

namespace ipipe {
namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(static_cast<Ns>(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_EchoNodeSimulatedMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    testbed::Cluster cluster;
    auto& server = cluster.add_server(testbed::ServerSpec{});

    class Echo final : public Actor {
     public:
      Echo() : Actor("echo") {}
      void handle(ActorEnv& env, const netsim::Packet& req) override {
        env.charge(usec(2));
        env.reply(req, 2, {});
      }
    };
    const ActorId id =
        server.runtime().register_actor(std::make_unique<Echo>());
    workloads::EchoWorkloadParams wl;
    wl.server = 0;
    wl.actor = id;
    wl.msg_type = 1;
    wl.frame_size = 512;
    auto& client = cluster.add_client(10.0, workloads::echo_workload(wl));
    client.start_closed_loop(8, msec(1));
    cluster.run_until(msec(2));
    benchmark::DoNotOptimize(client.completed());
  }
}
BENCHMARK(BM_EchoNodeSimulatedMillisecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ipipe

BENCHMARK_MAIN();
