# Empty dependencies file for fig05_traffic_manager.
# This may be replaced when dependencies are built.
