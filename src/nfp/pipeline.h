// Pipeline runtime: maps a parsed PipelineSpec onto a chain of iPipe
// actors (one StageActor per stage plus an egress reorder actor),
// registered as one actor group so the scheduler places and migrates the
// pipeline as a unit.
//
// Packet contract.  Clients inject kNfData packets; the head stage
// stamps each arrival with a per-source ingress sequence (Packet::
// pipe_seq = 1, 2, 3, ... in arrival order — request ids stay opaque,
// client-owned correlation state).  Stages forward packets with
// ActorEnv::forward, which preserves every field, so the sequence
// survives the whole chain.  Drops become kNfTomb tombstones that
// continue down the chain;
// fan-out copies travel as kNfBonus.  The egress actor restores ingress
// order per source before replying: data for sequence s is released only
// after every sequence below s was released (as a reply or a tombstone),
// so cross-stage reordering — multi-core execution, rate-limiter holds,
// pFabric's priority inversion — is invisible to clients.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ipipe/runtime.h"
#include "nfp/spec.h"
#include "nfp/stage.h"

namespace ipipe::nfp {

/// Per-source state of the egress reorder point.
struct EgressSource {
  std::uint64_t next_expected = 1;
  std::uint64_t last_delivered = 0;
  std::map<std::uint64_t, netsim::PacketPtr> pending;  ///< null = tombstone
};

/// Egress counters (order_violations must stay 0 — the bench asserts it).
struct EgressStats {
  std::uint64_t delivered = 0;         ///< in-order replies sent
  std::uint64_t tombstones = 0;        ///< dropped sequences accounted
  std::uint64_t bonus = 0;             ///< fan-out copies absorbed
  std::uint64_t order_violations = 0;  ///< non-monotonic release (bug!)
  std::uint64_t pending = 0;           ///< buffered at last count
};

/// One stage's public-facing snapshot.
struct StageSnapshot {
  std::string name;
  StageStats stats;
};

class StageActor;
class EgressActor;

class PipelineRunner {
 public:
  struct Options {
    std::uint64_t seed = 42;
    ActorLoc initial = ActorLoc::kNic;
    /// Owning tenant: every stage actor registers under this virtual
    /// function, so the pipeline's DMO/bandwidth/core usage is isolated
    /// and accounted as a unit.  kNoTenant = the physical function.
    TenantId tenant = kNoTenant;
  };

  /// Build and register the pipeline on `rt`.  The runtime owns the
  /// actors; the runner borrows them and must not outlive `rt`.
  PipelineRunner(Runtime& rt, const PipelineSpec& spec, Options opts);
  PipelineRunner(Runtime& rt, const PipelineSpec& spec)
      : PipelineRunner(rt, spec, Options{}) {}

  /// Actor id clients address their requests to (the first stage).
  [[nodiscard]] netsim::ActorId ingress() const noexcept { return ingress_; }
  [[nodiscard]] GroupId group() const noexcept { return group_; }
  [[nodiscard]] std::size_t depth() const noexcept { return stages_.size(); }
  [[nodiscard]] const PipelineSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] std::vector<StageSnapshot> stage_snapshots() const;
  [[nodiscard]] EgressStats egress_stats() const;

  /// Move the whole pipeline NIC<->host as one unit.
  std::size_t migrate(ActorLoc to) { return rt_.migrate_group(group_, to); }

 private:
  Runtime& rt_;
  PipelineSpec spec_;
  GroupId group_ = kNoGroup;
  netsim::ActorId ingress_ = 0;
  std::vector<StageActor*> stages_;  ///< owned by the runtime
  EgressActor* egress_ = nullptr;    ///< owned by the runtime
};

}  // namespace ipipe::nfp
