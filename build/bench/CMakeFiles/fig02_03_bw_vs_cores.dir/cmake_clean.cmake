file(REMOVE_RECURSE
  "CMakeFiles/fig02_03_bw_vs_cores.dir/fig02_03_bw_vs_cores.cc.o"
  "CMakeFiles/fig02_03_bw_vs_cores.dir/fig02_03_bw_vs_cores.cc.o.d"
  "fig02_03_bw_vs_cores"
  "fig02_03_bw_vs_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_03_bw_vs_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
