// Verification fuzzing driver: sweep seeds, each pairing a randomized
// workload mix with a randomized fault plan, run the history checkers
// (linearizability for RKV, serializability + atomicity for DT) on every
// run, and SHRINK any failing fault plan to a minimal reproducing
// schedule (greedy ddmin: drop events, halve windows, re-run
// deterministically).  The minimized plan is printed in the FaultPlan
// text grammar alongside the seed so the failure replays exactly.
//
//   verify_fuzz [--seeds=N] [--seed-base=N] [--seed=N]
//               [--app=rkv|dt|shard|mix] [--duration-s=N] [--max-states=N]
//               [--inject=none|stale-read|lost-abort|stale-cache]
//               [--expect-fail] [--no-shrink] [--no-chaos] [--out-dir=DIR]
//               [--replay-corpus=DIR] [--trace-out=<json>]
//
// --inject arms one of the known-bug mutations (stale follower reads in
// RKV, lost abort in DT, invalidation-dropping NIC cache in the sharded
// RKV) as a checker self-test; with --expect-fail the driver exits 0
// only when every run is caught.  --replay-corpus runs each *.corpus
// file (tests/corpus/) and checks its recorded expectation.
#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "verify/fuzz.h"

using namespace ipipe;

namespace {

struct Options {
  std::uint64_t seeds = 10;
  std::uint64_t seed_base = 1;
  std::string app = "mix";
  unsigned duration_s = 25;
  std::uint64_t max_states = 4'000'000;
  std::string inject = "none";
  bool expect_fail = false;
  bool shrink = true;
  bool chaos = true;
  std::string out_dir;
  std::string replay_corpus;
  std::string trace_out;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

verify::FuzzOptions base_options(const Options& opt, std::uint64_t seed,
                                 verify::FuzzApp app, trace::Tracer* tracer) {
  verify::FuzzOptions fo;
  fo.seed = seed;
  fo.app = app;
  fo.duration_s = opt.duration_s;
  fo.chaos = opt.chaos;
  fo.max_states = opt.max_states;
  fo.tracer = tracer;
  if (opt.inject == "stale-read") fo.inject_stale_reads = true;
  if (opt.inject == "lost-abort") fo.inject_lost_abort = true;
  if (opt.inject == "stale-cache") fo.inject_stale_cache = true;
  return fo;
}

const char* app_name(verify::FuzzApp app) {
  switch (app) {
    case verify::FuzzApp::kRkv:
      return "rkv";
    case verify::FuzzApp::kDt:
      return "dt";
    case verify::FuzzApp::kShard:
      return "shard";
  }
  return "?";
}

void print_verdict(std::uint64_t seed, verify::FuzzApp app,
                   const verify::FuzzVerdict& v) {
  std::printf("seed=%llu app=%s %s", static_cast<unsigned long long>(seed),
              app_name(app), v.ok ? "PASS" : "FAIL");
  if (app != verify::FuzzApp::kDt) {
    std::printf(" kv_ops=%llu completed=%llu states=%llu",
                static_cast<unsigned long long>(v.kv_ops),
                static_cast<unsigned long long>(v.kv_completed),
                static_cast<unsigned long long>(v.states_explored));
  } else {
    std::printf(" committed=%llu aborted=%llu",
                static_cast<unsigned long long>(v.txns_committed),
                static_cast<unsigned long long>(v.txns_aborted));
  }
  if (v.inconclusive) std::printf(" (inconclusive: budget exhausted)");
  if (!v.ok) std::printf(" checker=%s", v.checker.c_str());
  std::printf("\n");
  if (!v.ok) std::printf("%s", v.detail.c_str());
}

void write_minimized(const Options& opt, std::uint64_t seed,
                     verify::FuzzApp app, const verify::ShrinkResult& sr) {
  if (opt.out_dir.empty()) return;
  ::mkdir(opt.out_dir.c_str(), 0755);
  const std::string path = opt.out_dir + "/seed-" + std::to_string(seed) +
                           "-" + app_name(app) + ".corpus";
  std::ofstream os(path);
  os << "# minimized by verify_fuzz --seed=" << seed << "\n";
  os << "app " << app_name(app) << "\n";
  os << "seed " << seed << "\n";
  os << "duration " << opt.duration_s << "\n";
  os << "inject " << opt.inject << "\n";
  os << "expect fail\n";
  os << "plan:\n" << sr.plan.to_text();
  std::printf("minimized plan written to %s\n", path.c_str());
}

/// One run + optional shrink.  Returns true when the run PASSED.
bool run_one(const Options& opt, std::uint64_t seed, verify::FuzzApp app,
             trace::Tracer* tracer) {
  const verify::FuzzOptions fo = base_options(opt, seed, app, tracer);
  const verify::FuzzVerdict v = verify::run_verify_once(fo);
  print_verdict(seed, app, v);
  if (v.ok) return true;
  if (opt.shrink) {
    const verify::ShrinkResult sr = verify::shrink_fault_plan(fo, v.plan);
    std::printf("shrink: %u runs, %zu -> %zu events\n", sr.runs,
                v.plan.size(), sr.plan.size());
    for (const auto& step : sr.steps) std::printf("  %s\n", step.c_str());
    std::printf("minimal reproducing plan (seed=%llu app=%s):\n%s",
                static_cast<unsigned long long>(seed), app_name(app),
                sr.plan.empty() ? "<empty: workload alone reproduces>\n"
                                : sr.plan.to_text().c_str());
    write_minimized(opt, seed, app, sr);
  }
  return false;
}

// ---- corpus replay ---------------------------------------------------------

struct CorpusCase {
  std::string path;
  verify::FuzzOptions fo;
  bool expect_fail = false;
};

std::optional<CorpusCase> load_corpus(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  CorpusCase c;
  c.path = path;
  c.fo.chaos = true;
  std::string line;
  bool in_plan = false;
  std::string plan_text;
  while (std::getline(is, line)) {
    if (in_plan) {
      plan_text += line + "\n";
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "app") {
      std::string a;
      ls >> a;
      c.fo.app = a == "dt"      ? verify::FuzzApp::kDt
                 : a == "shard" ? verify::FuzzApp::kShard
                                : verify::FuzzApp::kRkv;
    } else if (kw == "seed") {
      ls >> c.fo.seed;
    } else if (kw == "duration") {
      ls >> c.fo.duration_s;
    } else if (kw == "inject") {
      std::string inj;
      ls >> inj;
      c.fo.inject_stale_reads = inj == "stale-read";
      c.fo.inject_lost_abort = inj == "lost-abort";
      c.fo.inject_stale_cache = inj == "stale-cache";
    } else if (kw == "expect") {
      std::string e;
      ls >> e;
      c.expect_fail = e == "fail";
    } else if (kw == "plan:") {
      in_plan = true;
    } else {
      std::fprintf(stderr, "%s: unknown corpus keyword '%s'\n", path.c_str(),
                   kw.c_str());
      return std::nullopt;
    }
  }
  if (in_plan) {
    std::string err;
    auto plan = netsim::FaultPlan::parse(plan_text, &err);
    if (!plan) {
      std::fprintf(stderr, "%s: bad plan: %s\n", path.c_str(), err.c_str());
      return std::nullopt;
    }
    c.fo.plan_override = std::move(*plan);
  }
  return c;
}

int replay_corpus(const Options& opt, trace::Tracer* tracer) {
  std::vector<std::string> files;
  DIR* dir = ::opendir(opt.replay_corpus.c_str());
  if (dir == nullptr) {
    std::fprintf(stderr, "cannot open corpus dir %s\n",
                 opt.replay_corpus.c_str());
    return 2;
  }
  while (dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name.size() > 7 && name.substr(name.size() - 7) == ".corpus") {
      files.push_back(opt.replay_corpus + "/" + name);
    }
  }
  ::closedir(dir);
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "no *.corpus files in %s\n",
                 opt.replay_corpus.c_str());
    return 2;
  }

  int bad = 0;
  for (const auto& path : files) {
    auto c = load_corpus(path);
    if (!c) {
      ++bad;
      continue;
    }
    c->fo.tracer = tracer;
    const verify::FuzzVerdict v = verify::run_verify_once(c->fo);
    const bool matched = v.ok != c->expect_fail;
    std::printf("%s: %s (expected %s) %s\n", path.c_str(),
                v.ok ? "pass" : "fail", c->expect_fail ? "fail" : "pass",
                matched ? "OK" : "MISMATCH");
    if (!matched) {
      if (!v.ok) std::printf("%s", v.detail.c_str());
      ++bad;
    }
  }
  std::printf("corpus: %zu cases, %d mismatches\n", files.size(), bad);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string val;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_flag(arg, "--seeds", &val)) {
      opt.seeds = std::strtoull(val.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "--seed-base", &val)) {
      opt.seed_base = std::strtoull(val.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "--seed", &val)) {
      opt.seed_base = std::strtoull(val.c_str(), nullptr, 10);
      opt.seeds = 1;
    } else if (parse_flag(arg, "--app", &val)) {
      opt.app = val;
    } else if (parse_flag(arg, "--duration-s", &val)) {
      opt.duration_s =
          static_cast<unsigned>(std::strtoul(val.c_str(), nullptr, 10));
    } else if (parse_flag(arg, "--max-states", &val)) {
      opt.max_states = std::strtoull(val.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "--inject", &val)) {
      opt.inject = val;
    } else if (std::strcmp(arg, "--expect-fail") == 0) {
      opt.expect_fail = true;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      opt.shrink = false;
    } else if (std::strcmp(arg, "--no-chaos") == 0) {
      opt.chaos = false;
    } else if (parse_flag(arg, "--out-dir", &val)) {
      opt.out_dir = val;
    } else if (parse_flag(arg, "--replay-corpus", &val)) {
      opt.replay_corpus = val;
    } else if (parse_flag(arg, "--trace-out", &val)) {
      opt.trace_out = val;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  if (opt.inject != "none" && opt.inject != "stale-read" &&
      opt.inject != "lost-abort" && opt.inject != "stale-cache") {
    std::fprintf(stderr, "bad --inject value: %s\n", opt.inject.c_str());
    return 2;
  }
  if (opt.duration_s < 15) {
    std::fprintf(stderr, "--duration-s must be >= 15\n");
    return 2;
  }

  trace::Tracer tracer;
  trace::Tracer* tp = nullptr;
  if (!opt.trace_out.empty()) {
    tracer.enable();
    tp = &tracer;
  }

  int rc = 0;
  if (!opt.replay_corpus.empty()) {
    rc = replay_corpus(opt, tp);
  } else {
    std::uint64_t failures = 0;
    std::uint64_t runs = 0;
    for (std::uint64_t s = 0; s < opt.seeds; ++s) {
      const std::uint64_t seed = opt.seed_base + s;
      std::vector<verify::FuzzApp> apps;
      if (opt.app == "rkv") {
        apps = {verify::FuzzApp::kRkv};
      } else if (opt.app == "dt") {
        apps = {verify::FuzzApp::kDt};
      } else if (opt.app == "shard") {
        apps = {verify::FuzzApp::kShard};
      } else {
        apps = {s % 3 == 0   ? verify::FuzzApp::kRkv
                : s % 3 == 1 ? verify::FuzzApp::kDt
                             : verify::FuzzApp::kShard};
      }
      for (const auto app : apps) {
        ++runs;
        if (!run_one(opt, seed, app, tp)) ++failures;
      }
    }
    std::printf("verify_fuzz: %llu runs, %llu failures%s\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(failures),
                opt.expect_fail ? " (failures expected)" : "");
    if (opt.expect_fail) {
      rc = failures == runs ? 0 : 1;  // every armed run must be caught
    } else {
      rc = failures == 0 ? 0 : 1;
    }
  }

  if (tp != nullptr) {
    std::ofstream os(opt.trace_out);
    trace::export_chrome_json(os, tracer);
    std::printf("trace written to %s\n", opt.trace_out.c_str());
  }
  return rc;
}
