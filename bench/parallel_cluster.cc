// Parallel-engine acceptance driver: a 16-node rack (4 replicated-KV
// groups of 3 replicas + 4 echo servers) under a chaos schedule, executed
// on the sharded conservative engine.  stdout is a pure function of
// (--seed, --duration-s) — byte-identical for every --sim-threads value —
// and ends with FNV digests of the chaos event log, an exported runtime
// trace, and every workload result, so CI can diff whole runs as one
// line.  Wall-clock time goes to stderr (and --wall-out=<path> as JSON)
// for the scaling assertion.
//
//   parallel_cluster [--sim-threads=N] [--duration-s=S] [--seed=N]
//                    [--min-events=N] [--wall-out=<path>]
//
// Exit codes: 0 ok, 2 lost acked writes, 3 fewer events than --min-events.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/rkv/rkv_actors.h"
#include "common/trace.h"
#include "netsim/chaos.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

constexpr int kGroups = 4;
constexpr int kReplicas = 3;
constexpr int kRkvServers = kGroups * kReplicas;  // nodes 0..11
constexpr int kEchoServers = 4;                   // nodes 12..15
constexpr int kServers = kRkvServers + kEchoServers;
constexpr std::uint64_t kSeqMask = (1ULL << 40) - 1;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}
std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}
constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

std::string group_key(int group, std::uint64_t k) {
  return "g" + std::to_string(group) + "k" + std::to_string(k);
}

std::vector<std::uint8_t> group_value(int group, std::uint64_t k) {
  return {static_cast<std::uint8_t>(group), static_cast<std::uint8_t>(k),
          static_cast<std::uint8_t>(k >> 8), 0x5A};
}

/// Per-group PUT workload state (all clients live in the clients domain,
/// so sharing these across closures is single-threaded by construction).
struct GroupWriter {
  netsim::NodeId leader = 0;
  netsim::NodeId lo = 0;  ///< first node of the group
  std::deque<std::uint64_t> queue;
  std::map<std::uint64_t, std::uint64_t> issued;  ///< seq -> key
  std::set<std::uint64_t> acked;
  std::uint64_t next_key = 1;
  ActorId consensus = 0;
  workloads::ClientGen* client = nullptr;
};

const char* flag_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

class EchoActor final : public Actor {
 public:
  EchoActor() : Actor("echo") {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(usec(2));
    env.reply(req, 2, {});
  }
};

}  // namespace

int main(int argc, char** argv) {
  unsigned sim_threads = 1;
  double duration_s = 10.0;
  std::uint64_t seed = 1;
  std::uint64_t min_events = 0;
  std::string wall_out;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--sim-threads")) {
      const long n = std::strtol(v, nullptr, 10);
      sim_threads = n > 1 ? static_cast<unsigned>(n) : 1;
    } else if (const char* v = flag_value(argv[i], "--duration-s")) {
      duration_s = std::strtod(v, nullptr);
    } else if (const char* v = flag_value(argv[i], "--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value(argv[i], "--min-events")) {
      min_events = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value(argv[i], "--wall-out")) {
      wall_out = v;
    }
  }
  if (duration_s < 1.0) {
    std::fprintf(stderr, "parallel_cluster: --duration-s must be >= 1\n");
    return 1;
  }
  const Ns total = sec(duration_s);
  const Ns write_end = total - sec(duration_s * 0.2);

  testbed::ParallelCluster cluster;
  cluster.set_threads(sim_threads);
  for (int i = 0; i < kServers; ++i) {
    testbed::ServerSpec spec;
    spec.ipipe.supervise = i < kRkvServers;
    cluster.add_server(spec);
  }
  // Trace one RKV replica and one echo server; the exported text (with
  // the engine counters) feeds the trace digest.
  cluster.server(0).runtime().enable_tracing(1 << 14, msec(250));
  cluster.server(kRkvServers).runtime().enable_tracing(1 << 14, msec(250));

  // ---- RKV groups -------------------------------------------------------
  std::vector<GroupWriter> groups(kGroups);
  for (int g = 0; g < kGroups; ++g) {
    rkv::RkvParams params;
    params.replicas.clear();
    for (int r = 0; r < kReplicas; ++r) {
      params.replicas.push_back(static_cast<netsim::NodeId>(g * kReplicas + r));
    }
    params.enable_failover = true;
    params.heartbeat_period = msec(100);
    params.election_timeout_min = msec(250);
    params.election_timeout_max = msec(450);
    for (int r = 0; r < kReplicas; ++r) {
      params.self_index = static_cast<std::size_t>(r);
      const auto d = rkv::deploy_rkv(
          cluster.server(static_cast<std::size_t>(g * kReplicas + r)).runtime(),
          params);
      params.peer_consensus_actor = d.consensus;
      if (r == 0) groups[static_cast<std::size_t>(g)].consensus = d.consensus;
    }
    groups[static_cast<std::size_t>(g)].lo =
        static_cast<netsim::NodeId>(g * kReplicas);
    groups[static_cast<std::size_t>(g)].leader =
        groups[static_cast<std::size_t>(g)].lo;
  }
  for (int g = 0; g < kGroups; ++g) {
    GroupWriter& gw = groups[static_cast<std::size_t>(g)];
    auto& client = cluster.add_client(
        10.0,
        [&gw, g, write_end, &cluster](std::uint64_t seq, Rng&,
                                      netsim::PacketPool& pool) {
          std::uint64_t key = 0;
          if (!gw.queue.empty()) {
            key = gw.queue.front();
            gw.queue.pop_front();
          } else if (cluster.client_sim().now() < write_end) {
            key = gw.next_key++;
          } else {
            return netsim::PacketPtr{};
          }
          gw.issued[seq] = key;
          auto pkt = pool.make();
          pkt->dst = gw.leader;
          pkt->dst_actor = gw.consensus;
          pkt->msg_type = rkv::kClientPut;
          pkt->frame_size = 256;
          rkv::ClientReq req;
          req.op = rkv::Op::kPut;
          req.key = group_key(g, key);
          req.value = group_value(g, key);
          pkt->payload = req.encode();
          return pkt;
        },
        /*seed=*/seed * 1000 + 17 + static_cast<std::uint64_t>(g));
    client.enable_retries({.timeout = msec(80),
                           .max_retries = 4,
                           .backoff = 2.0,
                           .cap = msec(600)});
    client.set_on_reply([&gw](const netsim::Packet& pkt) {
      const auto it = gw.issued.find(pkt.request_id & kSeqMask);
      if (it == gw.issued.end()) return;
      const auto rep = rkv::ClientReply::decode(pkt.payload);
      if (!rep) return;
      const std::uint64_t key = it->second;
      gw.issued.erase(it);
      if (rep->status == rkv::Status::kOk) {
        gw.acked.insert(key);
        return;
      }
      if (rep->status == rkv::Status::kNotLeader && !rep->value.empty() &&
          rep->value[0] >= gw.lo && rep->value[0] < gw.lo + kReplicas) {
        gw.leader = rep->value[0];
      }
      gw.queue.push_back(key);
    });
    client.set_on_abandon([&gw](std::uint64_t rid) {
      const auto it = gw.issued.find(rid & kSeqMask);
      if (it != gw.issued.end()) {
        gw.queue.push_back(it->second);
        gw.issued.erase(it);
      }
      gw.leader = gw.lo + (gw.leader - gw.lo + 1) % kReplicas;
    });
    client.start_open_loop(100.0, write_end, /*poisson=*/false);
    gw.client = &client;
  }

  // ---- Echo servers -----------------------------------------------------
  std::vector<workloads::ClientGen*> echo_clients;
  for (int e = 0; e < kEchoServers; ++e) {
    const auto node = static_cast<std::size_t>(kRkvServers + e);
    const ActorId id = cluster.server(node).runtime().register_actor(
        std::make_unique<EchoActor>());
    workloads::EchoWorkloadParams wl;
    wl.server = static_cast<netsim::NodeId>(node);
    wl.actor = id;
    wl.msg_type = 1;
    wl.frame_size = 512;
    auto& client =
        cluster.add_client(10.0, workloads::echo_workload(wl),
                           /*seed=*/seed * 1000 + 91 + static_cast<std::uint64_t>(e));
    client.enable_retries({.timeout = msec(20),
                           .max_retries = 3,
                           .backoff = 2.0,
                           .cap = msec(200)});
    client.start_closed_loop(8, total - msec(50));
    echo_clients.push_back(&client);
  }

  // ---- Chaos schedule ---------------------------------------------------
  auto chaos = cluster.make_chaos();
  netsim::FaultPlan plan;
  {
    // A staggered replica crash per group, a fabric loss window, and one
    // flaky PCIe link on an echo node — plus a seeded random tail.
    for (int g = 0; g < kGroups; ++g) {
      plan.crash(static_cast<netsim::NodeId>(g * kReplicas), sec(2) + sec(g),
                 msec(1500));
    }
    netsim::FaultModel lossy;
    lossy.drop_prob = 0.01;
    lossy.corrupt_prob = 0.01;
    plan.link_fault(lossy, total / 2, msec(800));
    plan.pcie_corrupt(static_cast<netsim::NodeId>(kRkvServers + 1), 0.01,
                      total / 2, msec(500));
    Rng prng(0x9C1C0ULL + seed);
    Ns t = total / 2 + sec(1);
    while (t < total - sec(2)) {
      const int g = static_cast<int>(prng.uniform_u64(kGroups));
      const auto victim = static_cast<netsim::NodeId>(
          g * kReplicas + static_cast<int>(prng.uniform_u64(kReplicas)));
      plan.crash(victim, t, msec(500) + static_cast<Ns>(prng.uniform_u64(sec(1))));
      t += sec(1) + static_cast<Ns>(prng.uniform_u64(sec(1)));
    }
  }
  chaos->execute(plan);

  // ---- Run --------------------------------------------------------------
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.run_until(total);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // ---- Deterministic report (identical for every --sim-threads) --------
  const std::uint64_t events = cluster.engine().executed();
  std::printf("# parallel_cluster seed=%llu duration=%.0fs servers=%d\n",
              static_cast<unsigned long long>(seed), duration_s, kServers);
  std::printf("events=%llu rounds=%llu\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(cluster.engine().rounds()));
  std::printf(
      "net frames=%llu delivered=%llu dropped=%llu corrupted=%llu\n",
      static_cast<unsigned long long>(cluster.net().frames_sent()),
      static_cast<unsigned long long>(cluster.net().frames_delivered()),
      static_cast<unsigned long long>(cluster.net().frames_dropped()),
      static_cast<unsigned long long>(cluster.net().frames_corrupted()));

  std::uint64_t results = kFnvBasis;
  bool lost = false;
  for (int g = 0; g < kGroups; ++g) {
    const GroupWriter& gw = groups[static_cast<std::size_t>(g)];
    std::printf("group %d: acked=%zu retx=%llu\n", g, gw.acked.size(),
                static_cast<unsigned long long>(gw.client->retransmits()));
    results = fnv1a_u64(results, gw.acked.size());
    results = fnv1a_u64(results, gw.client->retransmits());
    for (const std::uint64_t k : gw.acked) results = fnv1a_u64(results, k);
    if (gw.acked.empty()) lost = true;  // a group that never acked is dead
  }
  for (int e = 0; e < kEchoServers; ++e) {
    auto& c = *echo_clients[static_cast<std::size_t>(e)];
    std::printf("echo %d: completed=%llu p50=%lluns p99=%lluns\n", e,
                static_cast<unsigned long long>(c.completed()),
                static_cast<unsigned long long>(c.latencies().p50()),
                static_cast<unsigned long long>(c.latencies().p99()));
    results = fnv1a_u64(results, c.completed());
    results = fnv1a_u64(results, c.latencies().p50());
    results = fnv1a_u64(results, c.latencies().p99());
  }
  std::printf("chaos crashes=%llu restores=%llu partitions=%llu heals=%llu\n",
              static_cast<unsigned long long>(chaos->crashes()),
              static_cast<unsigned long long>(chaos->restores()),
              static_cast<unsigned long long>(chaos->partitions()),
              static_cast<unsigned long long>(chaos->heals()));

  const std::uint64_t chaos_digest =
      fnv1a_str(kFnvBasis, chaos->event_log_text());
  std::ostringstream traces;
  trace::export_text(traces, cluster.server(0).runtime().tracer(),
                     &cluster.server(0).runtime().metrics());
  trace::export_text(traces, cluster.server(kRkvServers).runtime().tracer(),
                     &cluster.server(kRkvServers).runtime().metrics());
  const std::uint64_t trace_digest = fnv1a_str(kFnvBasis, traces.str());
  std::printf("digest chaos=%016llx trace=%016llx results=%016llx\n",
              static_cast<unsigned long long>(chaos_digest),
              static_cast<unsigned long long>(trace_digest),
              static_cast<unsigned long long>(results));

  // Wall-clock numbers are thread-count-dependent by design: stderr only.
  std::fprintf(stderr,
               "parallel_cluster: sim-threads=%u wall=%.3fs events=%llu "
               "(%.2fM events/s)\n",
               sim_threads, wall_s, static_cast<unsigned long long>(events),
               wall_s > 0 ? static_cast<double>(events) / wall_s / 1e6 : 0.0);
  if (!wall_out.empty()) {
    std::FILE* f = std::fopen(wall_out.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"threads\": %u, \"wall_seconds\": %.6f, "
                   "\"events\": %llu}\n",
                   sim_threads, wall_s,
                   static_cast<unsigned long long>(events));
      std::fclose(f);
    }
  }

  if (min_events > 0 && events < min_events) {
    std::fprintf(stderr,
                 "parallel_cluster: executed %llu events < --min-events=%llu\n",
                 static_cast<unsigned long long>(events),
                 static_cast<unsigned long long>(min_events));
    return 3;
  }
  return lost ? 2 : 0;
}
