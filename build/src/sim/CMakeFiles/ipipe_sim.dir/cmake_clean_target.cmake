file(REMOVE_RECURSE
  "libipipe_sim.a"
)
