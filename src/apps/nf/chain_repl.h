// Chain replication bookkeeping — the "packet replication" workload of
// Table 3 (linked-list data structure).  Tracks per-chain sequence
// numbers and acknowledgement propagation down a node chain.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <vector>

namespace ipipe::nf {

class ChainReplicator {
 public:
  explicit ChainReplicator(std::vector<std::uint32_t> chain_nodes)
      : chain_(std::move(chain_nodes)) {}

  struct Pending {
    std::uint64_t seq = 0;
    std::uint32_t next_hop = 0;
    std::size_t acks_needed = 0;
  };

  /// Head receives a write: assign a sequence number and record the
  /// pending entry.  Returns the entry to forward to the next hop.
  Pending submit();

  /// Ack from downstream for `seq`; returns true when fully replicated
  /// (entry removed from the pending list).
  bool ack(std::uint64_t seq);

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  [[nodiscard]] const std::vector<std::uint32_t>& chain() const noexcept {
    return chain_;
  }

 private:
  std::vector<std::uint32_t> chain_;
  std::list<Pending> pending_;  // the paper's linked list
  std::uint64_t next_seq_ = 1;
  std::uint64_t committed_ = 0;
};

}  // namespace ipipe::nf
