file(REMOVE_RECURSE
  "CMakeFiles/floem_compare.dir/floem_compare.cc.o"
  "CMakeFiles/floem_compare.dir/floem_compare.cc.o.d"
  "floem_compare"
  "floem_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floem_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
