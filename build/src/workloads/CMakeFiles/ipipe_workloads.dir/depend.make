# Empty dependencies file for ipipe_workloads.
# This may be replaced when dependencies are built.
