// Replicated key-value store example (§4): a 3-replica Multi-Paxos + LSM
// cluster served from the SmartNICs, exercised with the paper's YCSB-like
// workload (zipf 0.99, 95/5 read/write).  Shows leader election and
// where each actor ends up running.
//
// Build & run:  ./build/examples/replicated_kv
#include <cstdio>

#include "apps/rkv/rkv_actors.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

int main() {
  testbed::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.add_server(testbed::ServerSpec{});

  // Deploy the four RKV actors on every replica (same order everywhere so
  // actor ids agree cluster-wide).
  rkv::RkvParams params;
  params.replicas = {0, 1, 2};
  std::vector<rkv::RkvDeployment> nodes;
  for (std::size_t i = 0; i < 3; ++i) {
    params.self_index = i;
    nodes.push_back(rkv::deploy_rkv(cluster.server(i).runtime(), params));
    params.peer_consensus_actor = nodes.back().consensus;
  }
  std::printf("deployed RKV: consensus=%u memtable=%u sst-read=%u compact=%u\n",
              nodes[0].consensus, nodes[0].memtable, nodes[0].sst_read,
              nodes[0].compaction);

  // The paper's KV workload against the leader (node 0).
  workloads::KvWorkloadParams wl;
  wl.server = 0;
  wl.consensus_actor = nodes[0].consensus;
  wl.frame_size = 512;
  wl.num_keys = 10'000;
  auto& client = cluster.add_client(10.0, workloads::kv_workload(wl));
  client.start_closed_loop(8, msec(200));
  cluster.run_until(msec(220));

  std::printf("\nafter 200 simulated ms:\n");
  std::printf("  %llu requests completed, mean %.1fus, p99 %.1fus\n",
              static_cast<unsigned long long>(client.completed()),
              client.latencies().mean_ns() / 1000.0,
              to_us(client.latencies().p99()));
  for (std::size_t i = 0; i < 3; ++i) {
    auto& rt = cluster.server(i).runtime();
    auto* consensus = dynamic_cast<rkv::ConsensusActor*>(
        rt.find_actor(nodes[i].consensus));
    auto* memtable = dynamic_cast<rkv::MemtableActor*>(
        rt.find_actor(nodes[i].memtable));
    std::printf(
        "  node %zu: %s, %llu slots chosen, memtable %zu keys (%llu "
        "flushes), consensus on %s\n",
        i, consensus->is_leader() ? "LEADER" : "follower",
        static_cast<unsigned long long>(consensus->chosen_count()),
        memtable->list().size(),
        static_cast<unsigned long long>(memtable->flushes()),
        rt.control(nodes[i].consensus)->loc == ActorLoc::kNic ? "NIC" : "host");
  }

  // Fail over: trigger a leader election on node 2.
  std::printf("\ntriggering leader election on node 2...\n");
  auto pkt = netsim::alloc_packet();
  pkt->src = 2;
  pkt->dst = 2;
  pkt->dst_actor = nodes[2].consensus;
  pkt->msg_type = rkv::ConsensusActor::kElectTrigger;
  pkt->frame_size = 64;
  pkt->nic_arrival = cluster.sim().now();
  cluster.server(2).nic().tm().push(std::move(pkt));
  cluster.run_until(cluster.sim().now() + msec(10));

  for (std::size_t i = 0; i < 3; ++i) {
    auto* consensus = dynamic_cast<rkv::ConsensusActor*>(
        cluster.server(i).runtime().find_actor(nodes[i].consensus));
    std::printf("  node %zu: %s (ballot %llu)\n", i,
                consensus->is_leader() ? "LEADER" : "follower",
                static_cast<unsigned long long>(consensus->ballot()));
  }
  return 0;
}
