// Real-time analytics example (§4): the FlexStorm-style pipeline —
// pattern-matching filter, sliding-window counter, top-n ranker — spread
// over two SmartNIC-equipped servers with an aggregated ranker, processing
// a synthetic tweet stream.
//
// Build & run:  ./build/examples/analytics_pipeline
#include <cstdio>

#include "apps/rta/rta_actors.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

int main() {
  testbed::Cluster cluster;
  cluster.add_server(testbed::ServerSpec{});  // node 0: worker + aggregator
  cluster.add_server(testbed::ServerSpec{});  // node 1: worker

  rta::RtaParams params;
  params.patterns = {"[a-z]*ing", "data[0-9]+", "net"};
  params.topn = 5;
  params.counter_emit_every = 4;
  params.ranker_emit_every = 8;
  params.aggregator_node = 0;

  auto d0 = rta::deploy_rta(cluster.server(0).runtime(), params);
  params.aggregator_ranker = d0.ranker;
  auto d1 = rta::deploy_rta(cluster.server(1).runtime(), params);
  std::printf("deployed analytics pipeline: filter=%u counter=%u ranker=%u\n",
              d0.filter, d0.counter, d0.ranker);

  // One tweet stream per worker.
  std::vector<workloads::ClientGen*> clients;
  for (netsim::NodeId node : {netsim::NodeId{0}, netsim::NodeId{1}}) {
    workloads::RtaWorkloadParams wl;
    wl.worker = node;
    wl.filter_actor = node == 0 ? d0.filter : d1.filter;
    wl.frame_size = 1024;
    auto& c = cluster.add_client(10.0, workloads::rta_workload(wl),
                                 1234 + node);
    c.start_closed_loop(4, msec(100));
    clients.push_back(&c);
  }
  cluster.run_until(msec(110));

  std::uint64_t batches = 0;
  for (auto* c : clients) batches += c->completed();
  std::printf("\nprocessed %llu tuple batches\n",
              static_cast<unsigned long long>(batches));
  for (std::size_t i = 0; i < 2; ++i) {
    auto& rt = cluster.server(i).runtime();
    const auto& d = i == 0 ? d0 : d1;
    auto* filter = dynamic_cast<rta::FilterActor*>(rt.find_actor(d.filter));
    std::printf("  node %zu filter: %llu admitted / %llu discarded\n", i,
                static_cast<unsigned long long>(filter->admitted()),
                static_cast<unsigned long long>(filter->discarded()));
  }

  auto* agg = dynamic_cast<rta::RankerActor*>(
      cluster.server(0).runtime().find_actor(d0.ranker));
  std::printf("\naggregated top-%zu:\n", params.topn);
  for (const auto& tuple : agg->top()) {
    std::printf("  %-20s %llu\n", tuple.key.c_str(),
                static_cast<unsigned long long>(tuple.count));
  }
  return 0;
}
