// Ablation study: sensitivity of the iPipe runtime to its tuning knobs
// (DESIGN.md design-choice index).  One bimodal high-dispersion workload
// at 0.8 load on the 10GbE CN2350; each table sweeps one knob with the
// others at their defaults.
//   (a) tail_thresh      — when do downgrades start paying off?
//   (b) migration_cooldown — placement-change damping vs responsiveness
//   (c) mgmt_period      — management-core bookkeeping cadence
//   (d) EWMA alpha (hysteresis factor) — §3.2.2's α
#include <cstdio>

#include "common/table.h"
#include "harness/trace_opts.h"
#include "ipipe/runtime.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

/// --trace-out= captures the first sweep point (defaults-like config).
bench::TraceOpts g_trace;
bool g_trace_written = false;

class BimodalActor final : public Actor {
 public:
  BimodalActor() : Actor("bimodal") {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(usec(env.rng().bernoulli(0.5) ? 12.0 : 60.0));
    env.reply(req, 2, {});
  }
};

struct Outcome {
  double p99_us = 0.0;
  double mean_us = 0.0;
  std::uint64_t downgrades = 0;
  std::uint64_t migrations = 0;
};

Outcome run_with(IPipeConfig cfg) {
  testbed::Cluster cluster;
  testbed::ServerSpec spec;
  spec.ipipe = cfg;
  const bool traced = g_trace.enabled() && !g_trace_written;
  if (traced) g_trace.apply(spec.ipipe);
  auto& server = cluster.add_server(spec);
  std::vector<ActorId> actors;
  for (int i = 0; i < 3; ++i) {
    actors.push_back(
        server.runtime().register_actor(std::make_unique<BimodalActor>()));
  }
  const double mix_us = 36.0 + 2.0;  // service + forwarding tax
  const double rate = 0.8 * 12e6 / mix_us;
  auto& client = cluster.add_client(10.0, [&, actors](std::uint64_t seq, Rng&) {
    auto pkt = std::make_unique<netsim::Packet>();
    pkt->dst = 0;
    pkt->dst_actor = actors[seq % actors.size()];
    pkt->msg_type = 1;
    pkt->frame_size = 512;
    return pkt;
  });
  client.set_warmup(msec(10));
  client.start_open_loop(rate, msec(50), true);
  cluster.run_until(msec(65));
  if (traced) {
    bench::write_cluster_trace(g_trace, cluster, "ablation/bimodal");
    g_trace_written = true;
  }

  Outcome out;
  out.p99_us = to_us(client.latencies().p99());
  out.mean_us = client.latencies().mean_ns() / 1000.0;
  out.downgrades = server.runtime().downgrades();
  out.migrations =
      server.runtime().push_migrations() + server.runtime().pull_migrations();
  return out;
}

void emit(const char* title, const char* knob,
          const std::vector<std::pair<std::string, IPipeConfig>>& sweep) {
  std::printf("\nAblation: %s\n", title);
  TablePrinter table({knob, "mean(us)", "p99(us)", "downgrades", "migrations"});
  for (const auto& [label, cfg] : sweep) {
    const auto out = run_with(cfg);
    table.add_row({label, strf("%.1f", out.mean_us), strf("%.1f", out.p99_us),
                   strf("%llu", static_cast<unsigned long long>(out.downgrades)),
                   strf("%llu",
                        static_cast<unsigned long long>(out.migrations))});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = bench::parse_trace_opts(argc, argv);
  IPipeConfig base;
  base.tail_thresh = usec(90);
  base.mean_thresh = usec(55);

  {
    std::vector<std::pair<std::string, IPipeConfig>> sweep;
    for (const double us : {40.0, 70.0, 90.0, 150.0, 400.0}) {
      IPipeConfig cfg = base;
      cfg.tail_thresh = usec(us);
      sweep.emplace_back(strf("%.0fus", us), cfg);
    }
    emit("tail_thresh (downgrade trigger)", "tail_thresh", sweep);
  }
  {
    std::vector<std::pair<std::string, IPipeConfig>> sweep;
    for (const double ms : {1.0, 4.0, 10.0, 25.0}) {
      IPipeConfig cfg = base;
      cfg.migration_cooldown = msec(ms);
      sweep.emplace_back(strf("%.0fms", ms), cfg);
    }
    emit("migration cooldown (placement damping)", "cooldown", sweep);
  }
  {
    std::vector<std::pair<std::string, IPipeConfig>> sweep;
    for (const double us : {5.0, 20.0, 80.0, 320.0}) {
      IPipeConfig cfg = base;
      cfg.mgmt_period = usec(us);
      sweep.emplace_back(strf("%.0fus", us), cfg);
    }
    emit("management-core cadence", "mgmt_period", sweep);
  }
  {
    std::vector<std::pair<std::string, IPipeConfig>> sweep;
    for (const double alpha : {0.05, 0.15, 0.25, 0.5}) {
      IPipeConfig cfg = base;
      cfg.alpha = alpha;
      sweep.emplace_back(strf("%.2f", alpha), cfg);
    }
    emit("hysteresis factor alpha (§3.2.2)", "alpha", sweep);
  }
  std::printf(
      "\nReading: very low tail thresholds downgrade everything (DRR "
      "dynamics + churn); very high ones never react.  Short cooldowns "
      "thrash placements; long ones react late.  The defaults sit on the "
      "flat part of each curve.\n");
  return 0;
}
