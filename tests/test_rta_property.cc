// Property tests for the RTA Thompson-NFA regex engine: differential
// testing against std::regex (ECMAScript) on ~1000 seeded random
// patterns over the engine's supported construct set, plus directed
// edge cases (anchoring, empty alternation branches, escapes) and
// syntax-error rejection.
#include <gtest/gtest.h>

#include <regex>
#include <stdexcept>
#include <string>

#include "apps/rta/regex.h"
#include "common/rng.h"

namespace ipipe {
namespace {

constexpr char kAlphabet[] = "abcd";

std::string gen_alt(Rng& rng, int depth);

std::string gen_atom(Rng& rng, int depth) {
  const std::uint64_t kinds = depth > 0 ? 7 : 6;
  switch (rng.uniform_u64(kinds)) {
    case 0:
    case 1:
    case 2:
      return std::string(1, kAlphabet[rng.uniform_u64(4)]);
    case 3:
      return ".";
    case 4: {  // character class, possibly negated, possibly a range
      std::string cls = "[";
      if (rng.bernoulli(0.3)) cls += '^';
      const std::uint64_t items = 1 + rng.uniform_u64(3);
      for (std::uint64_t i = 0; i < items; ++i) {
        if (rng.bernoulli(0.3)) {
          const char lo = kAlphabet[rng.uniform_u64(3)];
          const char hi =
              static_cast<char>(lo + 1 + rng.uniform_u64(
                                             static_cast<std::uint64_t>(
                                                 'd' - lo)));
          cls += lo;
          cls += '-';
          cls += hi;
        } else {
          cls += kAlphabet[rng.uniform_u64(4)];
        }
      }
      return cls + "]";
    }
    case 5: {  // escaped metacharacter: literal in both engines
      static const char kMeta[] = {'.', '*', '+', '?', '|', '(', ')', '['};
      return std::string("\\") + kMeta[rng.uniform_u64(sizeof kMeta)];
    }
    default:
      return "(" + gen_alt(rng, depth - 1) + ")";
  }
}

std::string gen_concat(Rng& rng, int depth) {
  std::string out;
  const std::uint64_t atoms = 1 + rng.uniform_u64(4);
  for (std::uint64_t i = 0; i < atoms; ++i) {
    out += gen_atom(rng, depth);
    switch (rng.uniform_u64(6)) {
      case 0: out += '*'; break;
      case 1: out += '+'; break;
      case 2: out += '?'; break;
      default: break;
    }
  }
  return out;
}

std::string gen_alt(Rng& rng, int depth) {
  // An occasional empty branch exercises empty-alternation handling.
  std::string out =
      rng.bernoulli(0.08) ? std::string() : gen_concat(rng, depth);
  const std::uint64_t extra = rng.uniform_u64(3);
  for (std::uint64_t i = 0; i < extra; ++i) {
    out += '|';
    if (!rng.bernoulli(0.08)) out += gen_concat(rng, depth);
  }
  return out;
}

std::string gen_input(Rng& rng) {
  std::string out;
  const std::uint64_t len = rng.uniform_u64(9);
  for (std::uint64_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.uniform_u64(4)];
  }
  return out;
}

/// Compare the NFA engine against std::regex on one (pattern, input).
void check_differential(const rta::Regex& ours, const std::regex& ref,
                        const std::string& pattern,
                        const std::string& input) {
  EXPECT_EQ(ours.match(input), std::regex_match(input, ref))
      << "match() disagrees: pattern=\"" << pattern << "\" input=\""
      << input << "\"";
  EXPECT_EQ(ours.search(input), std::regex_search(input, ref))
      << "search() disagrees: pattern=\"" << pattern << "\" input=\""
      << input << "\"";
}

TEST(RtaRegexProperty, DifferentialVsStdRegex) {
  Rng rng(0x52E6E7E57ULL);
  int tested = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    const std::string pattern = gen_alt(rng, 2);
    std::regex ref;
    try {
      ref = std::regex(pattern, std::regex::ECMAScript);
    } catch (const std::regex_error&) {
      continue;  // generator bug, not an engine bug; don't fail the run
    }
    rta::Regex ours(pattern);
    ++tested;
    for (int i = 0; i < 5; ++i) {
      check_differential(ours, ref, pattern, gen_input(rng));
    }
    // Boundary inputs every round: empty and single characters.
    check_differential(ours, ref, pattern, "");
    check_differential(ours, ref, pattern, "a");
    if (HasFailure()) {
      FAIL() << "stopping after first divergence (iter " << iter << ")";
    }
  }
  EXPECT_GE(tested, 990) << "generator produced too many invalid patterns";
}

TEST(RtaRegexProperty, AnchoringMatchVsSearch) {
  const rta::Regex re("bc+");
  EXPECT_FALSE(re.match("abccd"));  // match() is fully anchored
  EXPECT_TRUE(re.search("abccd"));  // search() is not
  EXPECT_TRUE(re.match("bcc"));
  EXPECT_FALSE(re.search("bd"));

  // Same pairings as the reference engine.
  const std::regex ref("bc+");
  for (const std::string input : {"abccd", "bcc", "bd", "", "bc"}) {
    EXPECT_EQ(re.match(input), std::regex_match(input, ref)) << input;
    EXPECT_EQ(re.search(input), std::regex_search(input, ref)) << input;
  }
}

TEST(RtaRegexProperty, EmptyPatternAndEmptyAlternation) {
  const rta::Regex empty("");
  EXPECT_TRUE(empty.match(""));
  EXPECT_FALSE(empty.match("a"));
  EXPECT_TRUE(empty.search("a"));  // matches the empty substring

  for (const std::string pattern : {"a|", "|a", "(|b)a", "a(b|)c", "(a|)*"}) {
    const rta::Regex ours(pattern);
    const std::regex ref(pattern);
    for (const std::string input :
         {"", "a", "b", "ab", "ac", "abc", "ba", "aa"}) {
      EXPECT_EQ(ours.match(input), std::regex_match(input, ref))
          << "pattern=\"" << pattern << "\" input=\"" << input << "\"";
      EXPECT_EQ(ours.search(input), std::regex_search(input, ref))
          << "pattern=\"" << pattern << "\" input=\"" << input << "\"";
    }
  }
}

TEST(RtaRegexProperty, EscapesAreLiteral) {
  EXPECT_TRUE(rta::Regex("\\.").match("."));
  EXPECT_FALSE(rta::Regex("\\.").match("a"));
  EXPECT_TRUE(rta::Regex("a\\*").match("a*"));
  EXPECT_TRUE(rta::Regex("\\(\\)").match("()"));
  EXPECT_TRUE(rta::Regex("\\\\").match("\\"));
}

TEST(RtaRegexProperty, RejectsMalformedPatterns) {
  for (const std::string pattern :
       {"(", "(ab", "a)", "[ab", "[", "*", "*a", "+", "?", "a|*", "\\"}) {
    EXPECT_THROW(rta::Regex re(pattern), std::invalid_argument)
        << "pattern=\"" << pattern << "\" was accepted";
  }
}

}  // namespace
}  // namespace ipipe
