file(REMOVE_RECURSE
  "CMakeFiles/fig05_traffic_manager.dir/fig05_traffic_manager.cc.o"
  "CMakeFiles/fig05_traffic_manager.dir/fig05_traffic_manager.cc.o.d"
  "fig05_traffic_manager"
  "fig05_traffic_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_traffic_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
