// SmartNIC hardware descriptions.
//
// Each commodity card evaluated by the paper (Table 1) is described by a
// NicConfig: processor geometry, link speed, memory hierarchy (Table 2),
// per-packet forwarding cost and packet-rate ceiling (calibrated so that
// the Figure 2/3 bandwidth-vs-cores curves are reproduced), DMA/RDMA
// timing (Figures 7-10) and the accelerator bank (Table 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace ipipe::nic {

enum class NicPath {
  kOnPath,   ///< NIC cores sit on the packet path (LiquidIOII).
  kOffPath,  ///< NIC switch steers flows to host or NIC cores (BlueField,
             ///< Stingray).
};

/// One level of the on-NIC memory hierarchy.
struct MemLevel {
  std::uint64_t capacity_bytes = 0;
  double latency_ns = 0.0;  ///< random-access load-to-use latency
};

/// DMA engine timing model (per-core PCIe Gen3 x8 endpoint).
struct DmaTiming {
  Ns blocking_base = 900;        ///< fixed round-trip cost of a blocking op
  double read_gbps = 40.0;       ///< effective streaming read bandwidth
  double write_gbps = 64.0;      ///< effective streaming write bandwidth
  Ns nonblocking_post = 100;     ///< core-side cost to enqueue a command
  std::uint32_t queue_depth = 64;
  double engine_gbps = 40.0;     ///< per-engine service bandwidth
};

/// RDMA verbs timing model (off-path cards expose verbs, §2.2.5/Fig 9-10).
struct RdmaTiming {
  Ns base = 1900;          ///< one-sided op base latency
  double gbps = 16.0;      ///< streaming bandwidth
  Ns post_overhead = 350;  ///< per-op software overhead (vs native DMA)
};

/// Per-packet forwarding cost through one NIC core: cost(s) = a + b*s.
/// Calibrated against Figure 2 (CN2350) / Figure 3 (Stingray).
struct ForwardingCost {
  double base_ns = 1900.0;
  double per_byte_ns = 1.1;

  [[nodiscard]] Ns cost(std::uint32_t frame_size) const noexcept {
    return static_cast<Ns>(base_ns + per_byte_ns * frame_size);
  }
};

struct NicConfig {
  std::string name;
  NicPath path = NicPath::kOnPath;
  unsigned cores = 12;
  double freq_ghz = 1.2;
  double link_gbps = 10.0;
  unsigned ports = 2;

  MemLevel l1;      ///< per-core
  MemLevel l2;      ///< shared
  MemLevel dram;    ///< onboard DRAM
  std::uint32_t cache_line = 64;
  std::uint64_t scratchpad_bytes = 0;  ///< per-core scratchpad (LiquidIO)

  ForwardingCost forwarding;
  /// NIC-wide packet-rate ceiling (traffic manager / MAC limit), packets/s.
  double max_pps = 50e6;
  /// Cost for a core to pop one item from the shared hardware traffic
  /// manager queue; near zero with hardware support (implication I2).
  Ns tm_dequeue_cost = 15;
  /// Extra cost when no hardware traffic manager exists and a software
  /// shuffle layer provides the shared-queue abstraction (§3.2.6).
  Ns sw_shuffle_cost = 180;
  bool has_hw_traffic_manager = true;

  DmaTiming dma;
  RdmaTiming rdma;
  bool exposes_rdma = false;  ///< off-path cards talk to host via verbs

  /// NIC-side send/recv primitive cost (Fig. 6, hardware-assisted
  /// messaging): cost(s) = base + per_byte * s.
  double nstack_base_ns = 550.0;
  double nstack_per_byte_ns = 0.45;

  [[nodiscard]] double cycles_to_ns(double cycles) const noexcept {
    return cycles / freq_ghz;
  }
};

/// The four commodity SmartNICs characterized in the paper plus a "dumb"
/// standard NIC used by client machines and DPDK baselines.
[[nodiscard]] NicConfig liquidio_cn2350();   // 2x10GbE, 12x cnMIPS @1.2GHz
[[nodiscard]] NicConfig liquidio_cn2360();   // 2x25GbE, 16x cnMIPS @1.5GHz
[[nodiscard]] NicConfig bluefield_1m332a();  // 2x25GbE, 8x A72 @0.8GHz
[[nodiscard]] NicConfig stingray_ps225();    // 2x25GbE, 8x A72 @3.0GHz
[[nodiscard]] NicConfig intel_xl710();       // dumb 10GbE client NIC
[[nodiscard]] NicConfig intel_xxv710();      // dumb 25GbE client NIC

/// All four SmartNIC presets (for characterization sweeps).
[[nodiscard]] std::vector<NicConfig> smartnic_presets();

}  // namespace ipipe::nic
