// Tiny explicit-layout serializer for application message payloads.
// Little-endian, bounds-checked reads; used by all three applications'
// request/response formats.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ipipe::wire {

class Writer {
 public:
  template <typename T>
  Writer& put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
    return *this;
  }
  Writer& put_str(std::string_view s) {
    put(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }
  Writer& put_bytes(std::span<const std::uint8_t> b) {
    put(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
    return *this;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
  [[nodiscard]] bool get(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > data_.size()) return false;
    std::memcpy(&out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  [[nodiscard]] bool get_str(std::string& out) {
    std::uint16_t len = 0;
    if (!get(len) || pos_ + len > data_.size()) return false;
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  [[nodiscard]] bool get_bytes(std::vector<std::uint8_t>& out) {
    std::uint32_t len = 0;
    if (!get(len) || pos_ + len > data_.size()) return false;
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ipipe::wire
