// Minimal NIC firmware used by the characterization benchmarks (§2.2.2):
// an ECHO server that runs entirely on the SmartNIC.  Each core pulls a
// frame from the traffic manager, pays the forwarding cost plus an
// optional synthetic per-packet processing latency (Fig. 4), and bounces
// the frame back to its sender.
#pragma once

#include "netsim/packet.h"
#include "nic/nic_model.h"

namespace ipipe::testbed {

class EchoFirmware final : public nic::NicFirmware {
 public:
  explicit EchoFirmware(Ns extra_processing = 0)
      : extra_processing_(extra_processing) {}

  bool run_once(nic::NicExecContext& ctx, unsigned /*core*/) override {
    auto pkt = ctx.nic().tm().pop();
    if (!pkt) return false;
    const auto& cfg = ctx.nic().config();
    ctx.charge(cfg.has_hw_traffic_manager ? cfg.tm_dequeue_cost
                                          : cfg.sw_shuffle_cost);
    ctx.charge_forwarding(pkt->frame_size);
    if (extra_processing_ > 0) ctx.charge(extra_processing_);
    ++echoed_;
    pkt->dst = pkt->src;
    ctx.tx(std::move(pkt));
    return true;
  }

  void set_extra_processing(Ns t) noexcept { extra_processing_ = t; }
  [[nodiscard]] std::uint64_t echoed() const noexcept { return echoed_; }

 private:
  Ns extra_processing_;
  std::uint64_t echoed_ = 0;
};

}  // namespace ipipe::testbed
