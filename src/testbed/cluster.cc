#include "testbed/cluster.h"

#include <string>

namespace ipipe::testbed {

IPipeConfig config_for_mode(Mode mode, IPipeConfig base) {
  switch (mode) {
    case Mode::kIPipe:
      return base;
    case Mode::kDpdk:
      // Raw DPDK implementation: no framework overheads, no migration.
      base.enable_migration = false;
      base.channel_handling_ns = 0;
      base.dmo_translate_ns = 0;
      base.sched_bookkeeping_ns = 0;
      return base;
    case Mode::kFloem:
      // Static offload: elements stay where they were placed.
      base.enable_migration = false;
      return base;
    case Mode::kHostIPipe:
      // Host-only but with full iPipe machinery (overhead study).
      base.enable_migration = false;
      return base;
  }
  return base;
}

ServerNode::ServerNode(sim::Simulation& sim, netsim::Network& net,
                       netsim::NodeId id, ServerSpec spec)
    : id_(id), spec_(std::move(spec)), sim_(sim), net_(net) {
  if (spec_.mode == Mode::kDpdk) {
    // DPDK baseline runs on a standard NIC of the same link speed.
    nic::NicConfig dumb = spec_.nic.link_gbps > 10.0 ? nic::intel_xxv710()
                                                     : nic::intel_xl710();
    dumb.dma = spec_.nic.dma;
    nic_ = std::make_unique<nic::NicModel>(sim, dumb, net, id);
  } else {
    nic_ = std::make_unique<nic::NicModel>(sim, spec_.nic, net, id);
  }
  host_ = std::make_unique<hostsim::HostModel>(sim, spec_.host, *nic_);
  runtime_ = std::make_unique<Runtime>(sim, *nic_, *host_,
                                       config_for_mode(spec_.mode, spec_.ipipe));
}

void ServerNode::snapshot() {
  snapshot_at_ = sim_.now();
  host_busy_snapshot_ = host_->total_busy_ns();
  nic_busy_snapshot_ = nic_->total_busy_ns();
}

double ServerNode::host_cores_used() const {
  const Ns window = sim_.now() - snapshot_at_;
  if (window == 0) return 0.0;
  return static_cast<double>(host_->total_busy_ns() - host_busy_snapshot_) /
         static_cast<double>(window);
}

void ServerNode::crash() {
  if (down_) return;
  down_ = true;
  net_.detach(id_);
  runtime_->crash_node_state();
}

void ServerNode::restore() {
  if (!down_) return;
  down_ = false;
  net_.attach(id_, *nic_, nic_->config().link_gbps);
  runtime_->restore_node_state();
}

double ServerNode::nic_cores_used() const {
  const Ns window = sim_.now() - snapshot_at_;
  if (window == 0) return 0.0;
  return static_cast<double>(nic_->total_busy_ns() - nic_busy_snapshot_) /
         static_cast<double>(window);
}

ServerNode& Cluster::add_server(ServerSpec spec) {
  const auto id = static_cast<netsim::NodeId>(servers_.size());
  servers_.push_back(std::make_unique<ServerNode>(sim_, net_, id, std::move(spec)));
  return *servers_.back();
}

workloads::ClientGen& Cluster::add_client(double link_gbps,
                                          workloads::ClientGen::MakeReq make,
                                          std::uint64_t seed) {
  const auto id = static_cast<netsim::NodeId>(kClientBase + clients_.size());
  clients_.push_back(std::make_unique<workloads::ClientGen>(
      sim_, net_, id, link_gbps, std::move(make), seed));
  return *clients_.back();
}

workloads::OpenLoopGen& Cluster::add_open_loop(
    workloads::OpenLoopParams params) {
  const auto id = static_cast<netsim::NodeId>(kClientBase + clients_.size() +
                                              open_loops_.size());
  open_loops_.push_back(
      std::make_unique<workloads::OpenLoopGen>(sim_, net_, id, params));
  return *open_loops_.back();
}

void Cluster::snapshot_all() {
  for (auto& server : servers_) server->snapshot();
}

std::unique_ptr<netsim::ChaosController> Cluster::make_chaos() {
  auto chaos = std::make_unique<netsim::ChaosController>(sim_, net_);
  for (auto& server : servers_) {
    ServerNode* node = server.get();
    chaos->register_node(node->id(),
                         {.crash = [node] { node->crash(); },
                          .restore = [node] { node->restore(); },
                          .pcie_corrupt =
                              [node](double rate) {
                                node->runtime().set_channel_fault(rate);
                              },
                          .nic_crash = [node] { node->runtime().nic_crash(); },
                          .nic_restore =
                              [node] { node->runtime().nic_restore(); },
                          .pcie_flap =
                              [node](bool down) {
                                node->runtime().set_pcie_link(!down);
                              },
                          .accel_fail =
                              [node](std::uint32_t bank, bool failed) {
                                node->runtime().set_accel_failed(bank, failed);
                              }});
  }
  return chaos;
}

// --------------------------------------------------------- ParallelCluster --

ServerNode& ParallelCluster::add_server(ServerSpec spec) {
  const auto id = static_cast<netsim::NodeId>(servers_.size());
  const sim::DomainId d = psim_.add_domain("server" + std::to_string(id));
  server_domains_.push_back(d);
  // The node's components self-attach to the fabric; route their port to
  // the new domain.
  net_.set_attach_domain(d);
  servers_.push_back(
      std::make_unique<ServerNode>(psim_.domain(d), net_, id, std::move(spec)));
  ServerNode& node = *servers_.back();
  node.nic().set_engine_domain(d);
  node.host().set_engine_domain(d);
  node.runtime().set_engine(&psim_, d);
  return node;
}

workloads::ClientGen& ParallelCluster::add_client(
    double link_gbps, workloads::ClientGen::MakeReq make, std::uint64_t seed) {
  const auto id = static_cast<netsim::NodeId>(kClientBase + clients_.size());
  net_.set_attach_domain(client_dom_);
  clients_.push_back(std::make_unique<workloads::ClientGen>(
      psim_.domain(client_dom_), net_, id, link_gbps, std::move(make), seed));
  return *clients_.back();
}

workloads::OpenLoopGen& ParallelCluster::add_open_loop(
    workloads::OpenLoopParams params) {
  const auto id = static_cast<netsim::NodeId>(kClientBase + clients_.size() +
                                              open_loops_.size());
  net_.set_attach_domain(client_dom_);
  open_loops_.push_back(std::make_unique<workloads::OpenLoopGen>(
      psim_.domain(client_dom_), net_, id, params));
  return *open_loops_.back();
}

void ParallelCluster::run_until(Ns t) {
  if (!topology_frozen_) {
    net_.install_lookahead();
    topology_frozen_ = true;
  }
  psim_.run(t);
}

void ParallelCluster::snapshot_all() {
  for (auto& server : servers_) server->snapshot();
}

std::unique_ptr<netsim::ChaosController> ParallelCluster::make_chaos() {
  // The controller dispatches per action: node-scoped faults to the
  // node's domain, fabric-scoped ones to the switch domain.
  auto chaos = std::make_unique<netsim::ChaosController>(
      psim_.domain(net_.switch_domain()), net_);
  for (auto& server : servers_) {
    ServerNode* node = server.get();
    chaos->register_node(node->id(),
                         {.crash = [node] { node->crash(); },
                          .restore = [node] { node->restore(); },
                          .pcie_corrupt =
                              [node](double rate) {
                                node->runtime().set_channel_fault(rate);
                              },
                          .nic_crash = [node] { node->runtime().nic_crash(); },
                          .nic_restore =
                              [node] { node->runtime().nic_restore(); },
                          .pcie_flap =
                              [node](bool down) {
                                node->runtime().set_pcie_link(!down);
                              },
                          .accel_fail =
                              [node](std::uint32_t bank, bool failed) {
                                node->runtime().set_accel_failed(bank, failed);
                              }});
  }
  return chaos;
}

}  // namespace ipipe::testbed
