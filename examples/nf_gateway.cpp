// Network-function example (§5.7): an IPSec gateway actor with *real*
// AES-256-CTR + HMAC-SHA1 (bytes are genuinely encrypted/authenticated)
// and a TCAM firewall in front of it, both running on the SmartNIC.
//
// Build & run:  ./build/examples/nf_gateway
#include <cstdio>

#include "apps/nf/ipsec.h"
#include "apps/nf/tcam.h"
#include "crypto/md5.h"
#include "ipipe/runtime.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

class GatewayActor final : public Actor {
 public:
  GatewayActor()
      : Actor("ipsec-gateway"),
        tx_(std::vector<std::uint8_t>(32, 0x42), {0xAA, 0xBB}),
        rx_(std::vector<std::uint8_t>(32, 0x42), {0xAA, 0xBB}) {
    // Firewall policy: drop anything to port 23 (telnet), allow the rest.
    nf::TcamRule deny{};
    deny.value.dst_port = 23;
    deny.mask.dst_port = 0xFFFF;
    deny.priority = 10;
    deny.action = 0;
    firewall_.add_rule(deny);
    nf::TcamRule allow{};
    allow.priority = 1;
    allow.action = 1;
    firewall_.add_rule(allow);
  }

  void handle(ActorEnv& env, const netsim::Packet& req) override {
    nf::FiveTuple tuple;
    tuple.dst_port = static_cast<std::uint16_t>(req.flow % 1024);
    const auto verdict = firewall_.lookup(tuple);
    env.compute(200);
    if (!verdict || verdict->action == 0) {
      ++dropped_;
      return;  // firewall drop
    }

    // Encrypt + authenticate the payload with real crypto, then verify
    // the round trip (a self-check a production gateway wouldn't do).
    const auto esp = tx_.encapsulate(req.payload);
    const auto back = rx_.decapsulate(esp);
    round_trip_ok_ = round_trip_ok_ && back.has_value() &&
                     *back == req.payload;
    // Time cost comes from the AES + SHA-1 engines (batched).
    env.accel(nic::AccelKind::kAes, req.frame_size, 8);
    env.accel(nic::AccelKind::kSha1, req.frame_size, 8);
    ++encrypted_;
    env.reply(req, 2, {}, req.frame_size);
  }

  std::uint64_t encrypted_ = 0;
  std::uint64_t dropped_ = 0;
  bool round_trip_ok_ = true;

 private:
  nf::SoftTcam firewall_;
  nf::IpsecGateway tx_;
  nf::IpsecGateway rx_;
};

}  // namespace

int main() {
  testbed::Cluster cluster;
  auto& server = cluster.add_server(testbed::ServerSpec{});
  auto gw = std::make_unique<GatewayActor>();
  auto* gateway = gw.get();
  const ActorId id = server.runtime().register_actor(std::move(gw));

  auto& client = cluster.add_client(10.0, [&](std::uint64_t seq, Rng& rng, netsim::PacketPool& pool) {
    auto pkt = pool.make();
    pkt->dst = 0;
    pkt->dst_actor = id;
    pkt->msg_type = 1;
    pkt->frame_size = 1024;
    pkt->flow = static_cast<std::uint32_t>(seq);
    pkt->payload.resize(900);
    for (auto& b : pkt->payload) b = static_cast<std::uint8_t>(rng.next());
    return pkt;
  });
  client.start_closed_loop(8, msec(100));
  cluster.run_until(msec(110));

  const double gbps = static_cast<double>(client.completed()) * 1024 * 8 /
                      to_sec(msec(100)) / 1e9;
  std::printf("IPSec gateway on %s:\n", server.nic().config().name.c_str());
  std::printf("  %llu packets encrypted, %llu dropped by firewall\n",
              static_cast<unsigned long long>(gateway->encrypted_),
              static_cast<unsigned long long>(gateway->dropped_));
  std::printf("  crypto round-trip check: %s\n",
              gateway->round_trip_ok_ ? "all packets verified" : "FAILED");
  std::printf("  achieved ~%.1f Gbps of application bandwidth\n", gbps);
  std::printf("  mean latency %.1fus, p99 %.1fus\n",
              client.latencies().mean_ns() / 1000.0,
              to_us(client.latencies().p99()));
  return 0;
}
