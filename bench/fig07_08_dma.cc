// Figures 7 and 8: per-core blocking / non-blocking DMA read & write
// latency and throughput across payload sizes (10GbE LiquidIOII CN2350).
//
// Latency is the core-visible cost; throughput is measured by actually
// driving the simulated engine from a single issuing core.
#include <cstdio>

#include "common/table.h"
#include "nic/dma_engine.h"
#include "nic/nic_config.h"
#include "sim/simulation.h"

using namespace ipipe;

namespace {

/// Ops/s a single core achieves issuing back-to-back ops of `bytes`.
double measure_mops(bool blocking, bool write, std::uint32_t bytes) {
  sim::Simulation sim;
  nic::DmaEngine dma(sim, nic::liquidio_cn2350().dma);
  const Ns duration = msec(20);
  std::uint64_t completed = 0;

  if (blocking) {
    // Blocking: the core stalls for the full round trip per op.
    const Ns lat = write ? dma.blocking_write_latency(bytes)
                         : dma.blocking_read_latency(bytes);
    return 1e3 / static_cast<double>(lat);  // Mops
  }

  // Non-blocking: issue as fast as post cost + backpressure allow.
  std::function<void()> issue = [&] {
    if (sim.now() >= duration) return;
    const Ns post = write ? dma.nonblocking_write(bytes, [&] { ++completed; })
                          : dma.nonblocking_read(bytes, [&] { ++completed; });
    sim.schedule(std::max<Ns>(post, 1), issue);
  };
  issue();
  sim.run(duration + msec(5));
  return static_cast<double>(completed) / to_sec(duration) / 1e6;
}

}  // namespace

int main() {
  const auto cfg = nic::liquidio_cn2350();
  sim::Simulation sim;
  nic::DmaEngine dma(sim, cfg.dma);

  std::printf("\nFigure 7: per-core DMA latency (us) vs payload size\n");
  TablePrinter lat_table({"payload", "blk-read", "nonblk-read", "blk-write",
                          "nonblk-write"});
  for (const std::uint32_t bytes :
       {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    lat_table.add_row(
        {strf("%uB", bytes),
         strf("%.2f", to_us(dma.blocking_read_latency(bytes))),
         strf("%.2f", to_us(cfg.dma.nonblocking_post)),
         strf("%.2f", to_us(dma.blocking_write_latency(bytes))),
         strf("%.2f", to_us(cfg.dma.nonblocking_post))});
  }
  lat_table.print();

  std::printf("\nFigure 8: per-core DMA throughput (Mops) vs payload size\n");
  TablePrinter tput_table({"payload", "blk-read", "nonblk-read", "blk-write",
                           "nonblk-write", "blk-write GB/s"});
  for (const std::uint32_t bytes :
       {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const double bw = measure_mops(true, true, bytes);
    tput_table.add_row({strf("%uB", bytes),
                        strf("%.2f", measure_mops(true, false, bytes)),
                        strf("%.2f", measure_mops(false, false, bytes)),
                        strf("%.2f", bw),
                        strf("%.2f", measure_mops(false, true, bytes)),
                        strf("%.2f", bw * bytes / 1e3)});
  }
  tput_table.print();
  std::printf(
      "Shape check: non-blocking post cost is size-independent; large "
      "blocking transfers approach the PCIe streaming bandwidth "
      "(implication I6: aggregate transfers, use scatter-gather).\n");
  return 0;
}
