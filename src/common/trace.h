// Runtime-wide observability: a low-overhead event tracer plus a metrics
// registry, with Chrome-trace/Perfetto JSON and plain-text exporters.
//
// The tracer records *why* the runtime did what it did — FCFS<->DRR
// promotions/demotions with the EWMA mu/sigma values that triggered them,
// core scale-up/down, the four migration phases, per-core execution
// spans, channel send/retransmit/backpressure events and DMO traps — into
// a fixed-capacity ring of POD events (oldest dropped first, drops
// counted).  Timestamps are *virtual* (simulation) time, so enabling
// tracing never shifts measured latencies: hooks cost host CPU only, and
// every hook is guarded by an `enabled()` check that compiles to a single
// branch when tracing is off.
//
// The metrics registry holds periodic snapshots (per-actor service-time
// EWMA, mailbox occupancy, DMO working set, response-time histogram
// percentiles, channel counters) taken by the runtime's management core
// on a configurable virtual-time period.
//
// Exporters:
//  * ChromeTraceWriter / export_chrome_json — the Chrome trace event
//    format (loads in Perfetto UI / chrome://tracing).  Spans map to "X"
//    events, instants to "i", metrics snapshots to counter ("C") tracks.
//  * export_text — a plain table dump for terminals and diffing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/units.h"

namespace ipipe::trace {

/// Event category (Chrome trace "cat", filterable in Perfetto).
enum class Cat : std::uint8_t {
  kSched,    ///< scheduler decisions (promote/demote/scale/kill)
  kExec,     ///< per-core request execution spans
  kChannel,  ///< host<->NIC channel reliability events
  kDmo,      ///< distributed-memory-object traps and migrations
  kMig,      ///< actor migration phases 1-4
  kChaos,    ///< injected faults / heals and supervision actions
  kVerify,   ///< history-checker verdicts and fault-plan shrink progress
};

[[nodiscard]] const char* cat_name(Cat cat) noexcept;

/// Track-id convention shared by all runtime hooks: NIC cores get their
/// own track, host cores an offset range, and the non-core subsystems
/// fixed synthetic tracks.
namespace tid {
constexpr std::uint32_t kNicCore0 = 0;     ///< NIC core i -> i
constexpr std::uint32_t kHostCore0 = 100;  ///< host core i -> 100 + i
constexpr std::uint32_t kChanToHost = 200;
constexpr std::uint32_t kChanToNic = 201;
constexpr std::uint32_t kDmo = 210;
constexpr std::uint32_t kChaos = 220;
constexpr std::uint32_t kVerify = 230;
}  // namespace tid

/// One optional named numeric argument attached to an event.
struct Arg {
  const char* name = nullptr;  ///< static-lifetime string, nullptr = unused
  double value = 0.0;
};

/// A single trace record.  `name` (and Arg names) must be string literals
/// or otherwise outlive the tracer — events are never copied deep.
struct Event {
  Ns ts = 0;
  Ns dur = 0;  ///< 0 => instant event, else a [ts, ts+dur] span
  Cat cat = Cat::kSched;
  std::uint32_t tid = 0;
  std::uint64_t actor = 0;  ///< 0 = no actor associated
  const char* name = "";
  Arg a0{};
  Arg a1{};
};

/// Ring-buffered event recorder.  All record calls are no-ops (one branch)
/// until `enable()`; when the ring fills the oldest events are evicted
/// and counted in `dropped()`.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() noexcept { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Clock used for events recorded without an explicit timestamp
  /// (virtual/simulation time).  Unset => such events stamp 0.
  void set_clock(Clock clock) noexcept { clock_ = clock; }

  void instant(Cat cat, const char* name, std::uint32_t tid,
               std::uint64_t actor = 0, Arg a0 = {}, Arg a1 = {});
  void span(Cat cat, const char* name, std::uint32_t tid, Ns start, Ns end,
            std::uint64_t actor = 0, Arg a0 = {}, Arg a1 = {});

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Lifetime events recorded (including ones since evicted).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  void clear() noexcept;

  /// Visit retained events oldest-first.
  void for_each(const std::function<void(const Event&)>& fn) const;

 private:
  void push(Event e);
  [[nodiscard]] Ns now() const noexcept { return clock_.now(); }

  bool enabled_ = false;
  std::vector<Event> ring_;
  std::uint64_t total_ = 0;
  Clock clock_;
};

// ---------------------------------------------------------------- metrics --

/// Per-actor state sampled at snapshot time (schema documented in
/// EXPERIMENTS.md "Tracing & metrics").
struct ActorSample {
  std::uint64_t actor = 0;
  std::string name;
  bool on_nic = true;
  bool is_drr = false;
  double lat_mean_ns = 0.0;  ///< EWMA response-time mean (mu_i)
  double lat_std_ns = 0.0;   ///< EWMA response-time stddev (sigma_i)
  double lat_tail_ns = 0.0;  ///< mu + 3 sigma (the scheduler's P99 proxy)
  double exec_mean_ns = 0.0;
  std::uint64_t mailbox = 0;      ///< DRR mailbox occupancy
  std::uint64_t working_set = 0;  ///< live DMO bytes (both sides)
  std::uint64_t requests = 0;
  std::uint64_t migrations = 0;
};

/// One periodic snapshot of runtime-wide gauges plus all actors.
struct Snapshot {
  Ns ts = 0;
  unsigned fcfs_cores = 0;
  unsigned drr_cores = 0;
  double fcfs_util = 0.0;
  double drr_util = 0.0;
  std::uint64_t upgrades = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t push_migrations = 0;
  std::uint64_t pull_migrations = 0;
  std::uint64_t chan_sent = 0;
  std::uint64_t chan_queued = 0;
  std::uint64_t chan_retransmits = 0;
  Ns chan_backpressure_ns = 0;
  double resp_mean_ns = 0.0;
  Ns resp_p50_ns = 0;
  Ns resp_p99_ns = 0;
  std::uint64_t resp_count = 0;
  /// Parallel-engine counters for the node's domain (all zero when the
  /// runtime executes on the single-queue engine).  `eng_windows` > 0
  /// marks a snapshot as coming from a sharded run.
  std::uint64_t eng_events = 0;           ///< events executed in the domain
  std::uint64_t eng_windows = 0;          ///< conservative rounds so far
  std::uint64_t eng_stalled_windows = 0;  ///< rounds with an empty window
  std::uint64_t eng_handoffs_in = 0;      ///< cross-domain events received
  std::uint64_t eng_handoffs_out = 0;     ///< cross-domain events posted
  std::uint64_t eng_ring_peak = 0;        ///< handoff-ring high watermark
  Ns eng_lookahead_ns = 0;                ///< min incoming-edge lookahead
  std::vector<ActorSample> actors;
};

/// Append-only store of periodic snapshots with a virtual-time cadence.
class MetricsRegistry {
 public:
  void set_period(Ns period) noexcept { period_ = period; }
  [[nodiscard]] Ns period() const noexcept { return period_; }
  /// True when a new snapshot is owed at virtual time `now`.
  [[nodiscard]] bool due(Ns now) const noexcept {
    return period_ > 0 &&
           (snaps_.empty() || now - snaps_.back().ts >= period_);
  }
  void record(Snapshot snap) { snaps_.push_back(std::move(snap)); }
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const noexcept {
    return snaps_;
  }
  void clear() noexcept { snaps_.clear(); }

 private:
  Ns period_ = 0;
  std::vector<Snapshot> snaps_;
};

// ----------------------------------------------------------------- export --

/// Streams one Chrome-trace JSON document covering any number of
/// processes (pid = node id in cluster dumps).  Usage:
///   ChromeTraceWriter w(ofs);
///   w.add_process(0, "server0", tracer, &metrics);
///   w.finish();
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();

  void add_process(int pid, const std::string& name, const Tracer& tracer,
                   const MetricsRegistry* metrics = nullptr);
  void finish();

 private:
  void emit(const std::string& record);

  std::ostream& os_;
  bool first_ = true;
  bool finished_ = false;
};

/// Single-process convenience wrappers.
void export_chrome_json(std::ostream& os, const Tracer& tracer,
                        const MetricsRegistry* metrics = nullptr, int pid = 0);
/// Plain-text table dump: events in time order, then one block per
/// metrics snapshot.
void export_text(std::ostream& os, const Tracer& tracer,
                 const MetricsRegistry* metrics = nullptr);

}  // namespace ipipe::trace
