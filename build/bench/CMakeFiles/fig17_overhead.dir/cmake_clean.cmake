file(REMOVE_RECURSE
  "CMakeFiles/fig17_overhead.dir/fig17_overhead.cc.o"
  "CMakeFiles/fig17_overhead.dir/fig17_overhead.cc.o.d"
  "fig17_overhead"
  "fig17_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
