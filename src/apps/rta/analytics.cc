#include "apps/rta/analytics.h"

#include <cstring>

namespace ipipe::rta {

std::vector<std::uint8_t> pack_tuples(const std::vector<Tuple>& tuples) {
  std::vector<std::uint8_t> out;
  const auto n = static_cast<std::uint32_t>(tuples.size());
  out.resize(4);
  std::memcpy(out.data(), &n, 4);
  for (const auto& t : tuples) {
    const auto klen = static_cast<std::uint16_t>(t.key.size());
    const std::size_t base = out.size();
    out.resize(base + 2 + t.key.size() + 8 + 8);
    std::memcpy(out.data() + base, &klen, 2);
    std::memcpy(out.data() + base + 2, t.key.data(), t.key.size());
    std::memcpy(out.data() + base + 2 + t.key.size(), &t.count, 8);
    std::memcpy(out.data() + base + 2 + t.key.size() + 8, &t.timestamp, 8);
  }
  return out;
}

std::vector<Tuple> unpack_tuples(std::span<const std::uint8_t> bytes) {
  std::vector<Tuple> tuples;
  if (bytes.size() < 4) return tuples;
  std::uint32_t n = 0;
  std::memcpy(&n, bytes.data(), 4);
  std::size_t off = 4;
  tuples.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (off + 2 > bytes.size()) break;
    std::uint16_t klen = 0;
    std::memcpy(&klen, bytes.data() + off, 2);
    off += 2;
    if (off + klen + 16 > bytes.size()) break;
    Tuple t;
    t.key.assign(reinterpret_cast<const char*>(bytes.data() + off), klen);
    off += klen;
    std::memcpy(&t.count, bytes.data() + off, 8);
    off += 8;
    std::memcpy(&t.timestamp, bytes.data() + off, 8);
    off += 8;
    tuples.push_back(std::move(t));
  }
  return tuples;
}

Filter::Filter(const std::vector<std::string>& patterns) {
  patterns_.reserve(patterns.size());
  for (const auto& p : patterns) patterns_.emplace_back(p);
}

bool Filter::admit(const Tuple& t) {
  last_steps_ = 0;
  for (const auto& re : patterns_) {
    const bool hit = re.search(t.key);
    last_steps_ += re.last_steps();
    if (hit) {
      ++admitted_;
      return true;
    }
  }
  ++discarded_;
  return false;
}

SlidingCounter::SlidingCounter(Ns window, Ns slot_width)
    : window_(window), slot_width_(slot_width) {}

std::uint64_t SlidingCounter::add(const Tuple& t) {
  advance(t.timestamp);
  if (slots_.empty() || t.timestamp >= slots_.back().start + slot_width_) {
    Slot slot;
    slot.start = slots_.empty()
                     ? t.timestamp
                     : slots_.back().start +
                           ((t.timestamp - slots_.back().start) / slot_width_) *
                               slot_width_;
    slots_.push_back(std::move(slot));
  }
  slots_.back().counts[t.key] += t.count;
  auto& total = totals_[t.key];
  total += t.count;
  return total;
}

void SlidingCounter::advance(Ns now) {
  while (!slots_.empty() && slots_.front().start + window_ < now) {
    for (const auto& [key, cnt] : slots_.front().counts) {
      auto it = totals_.find(key);
      if (it != totals_.end()) {
        it->second -= std::min(it->second, cnt);
        if (it->second == 0) totals_.erase(it);
      }
    }
    slots_.pop_front();
  }
}

std::uint64_t SlidingCounter::count(const std::string& key) const {
  const auto it = totals_.find(key);
  return it == totals_.end() ? 0 : it->second;
}

std::uint64_t SlidingCounter::memory_bytes() const noexcept {
  std::uint64_t bytes = totals_.size() * 48;
  for (const auto& slot : slots_) bytes += slot.counts.size() * 48;
  return bytes;
}

std::size_t TopNRanker::quicksort(std::vector<Tuple>& v, std::ptrdiff_t lo,
                                  std::ptrdiff_t hi) {
  if (lo >= hi) return 0;
  std::size_t comparisons = 0;
  const std::uint64_t pivot = v[static_cast<std::size_t>((lo + hi) / 2)].count;
  std::ptrdiff_t i = lo;
  std::ptrdiff_t j = hi;
  while (i <= j) {
    while (v[static_cast<std::size_t>(i)].count > pivot) {
      ++i;
      ++comparisons;
    }
    while (v[static_cast<std::size_t>(j)].count < pivot) {
      --j;
      ++comparisons;
    }
    ++comparisons;
    if (i <= j) {
      std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
      ++i;
      --j;
    }
  }
  comparisons += quicksort(v, lo, j);
  comparisons += quicksort(v, i, hi);
  return comparisons;
}

std::size_t TopNRanker::update(const std::string& key, std::uint64_t count) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].count = count;
  } else {
    entries_.push_back(Tuple{key, count, 0});
  }
  const std::size_t comparisons =
      quicksort(entries_, 0, static_cast<std::ptrdiff_t>(entries_.size()) - 1);
  if (entries_.size() > n_) entries_.resize(n_);
  index_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) index_[entries_[i].key] = i;
  return comparisons;
}

std::vector<Tuple> TopNRanker::top() const { return entries_; }

}  // namespace ipipe::rta
