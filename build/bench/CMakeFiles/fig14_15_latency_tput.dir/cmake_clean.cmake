file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_latency_tput.dir/fig14_15_latency_tput.cc.o"
  "CMakeFiles/fig14_15_latency_tput.dir/fig14_15_latency_tput.cc.o.d"
  "fig14_15_latency_tput"
  "fig14_15_latency_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_latency_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
