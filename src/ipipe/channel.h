// Host <-> NIC message passing (§3.5).
//
// iPipe creates I/O channels of two unidirectional circular buffers that
// live in host memory.  The NIC writes its ring with batched non-blocking
// DMA; the host polls.  Because the DMA engine does not write message
// contents in a monotonic byte order, every message carries a 4-byte
// checksum validated before delivery.  The consumer acknowledges progress
// lazily — one dedicated message after consuming half the buffer — so the
// producer's free-space view trails reality (the FaRM-style lazy update).
//
// This implementation is real: bytes are serialized into an actual ring,
// wrap-around and checksum verification happen on real data (tests inject
// corruption), and only the *timing* (PCIe transfer, poll intervals) is
// simulated.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/units.h"
#include "netsim/packet.h"
#include "nic/dma_engine.h"
#include "sim/simulation.h"

namespace ipipe {

/// A message crossing the PCIe channel.
struct ChannelMsg {
  netsim::ActorId dst_actor = 0;
  netsim::ActorId src_actor = netsim::kForwardOnly;
  std::uint16_t msg_type = 0;
  std::uint16_t flags = 0;
  netsim::NodeId src_node = 0;
  netsim::NodeId dst_node = 0;
  std::uint32_t flow = 0;
  std::uint64_t request_id = 0;
  Ns created_at = 0;
  std::uint32_t frame_size = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] static ChannelMsg from_packet(const netsim::Packet& pkt);
  [[nodiscard]] netsim::PacketPtr to_packet() const;

  /// Serialized wire size (header + payload), for DMA cost accounting.
  [[nodiscard]] std::uint32_t wire_bytes() const noexcept {
    return kHeaderBytes + static_cast<std::uint32_t>(payload.size());
  }
  static constexpr std::uint32_t kHeaderBytes = 48;
};

/// Serialize / parse (parse returns nullopt on malformed input).
[[nodiscard]] std::vector<std::uint8_t> serialize(const ChannelMsg& msg);
[[nodiscard]] std::optional<ChannelMsg> parse_msg(
    std::span<const std::uint8_t> bytes);

/// Unidirectional SPSC ring with framing ([len][crc][body]) and lazy
/// consumer-progress acknowledgement.
class ChannelRing {
 public:
  explicit ChannelRing(std::size_t capacity);

  /// Producer: append one framed message.  Fails (false) when the
  /// producer's *conservative* free-space view cannot fit it.
  bool push(std::span<const std::uint8_t> body);

  /// Consumer: pop the next message; verifies the checksum.  Returns
  /// nullopt when empty.  `corrupt` is set when a frame failed its CRC
  /// and was discarded.
  std::optional<std::vector<std::uint8_t>> pop(bool* corrupt = nullptr);

  /// Consumer-side: bytes consumed since the last ack.  The channel sends
  /// an ack message once this exceeds capacity/2 (§3.5).
  [[nodiscard]] std::size_t unacked() const noexcept { return consumed_unacked_; }
  /// Producer learns of consumer progress (the lazy header update).
  void ack();

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  /// Producer's conservative view of free bytes.
  [[nodiscard]] std::size_t producer_free() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return write_pos_ == read_pos_; }
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }
  [[nodiscard]] std::uint64_t popped() const noexcept { return popped_; }
  [[nodiscard]] std::uint64_t crc_failures() const noexcept { return crc_failures_; }

  /// Test hook: flip a bit inside the ring storage.
  void corrupt_byte(std::size_t pos, std::uint8_t xor_mask) {
    buf_[pos % buf_.size()] ^= xor_mask;
  }
  [[nodiscard]] std::size_t write_pos() const noexcept { return write_pos_; }
  [[nodiscard]] std::size_t read_pos() const noexcept { return read_pos_; }

 private:
  void write_bytes(std::span<const std::uint8_t> bytes);
  void read_bytes(std::span<std::uint8_t> out);

  std::vector<std::uint8_t> buf_;
  // Logical (monotonically increasing) positions, reduced mod capacity.
  std::size_t write_pos_ = 0;       // producer
  std::size_t read_pos_ = 0;        // consumer
  std::size_t acked_read_pos_ = 0;  // producer's stale view of read_pos_
  std::size_t consumed_unacked_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t crc_failures_ = 0;
};

/// Bidirectional channel with simulated PCIe timing.  Messages pushed on
/// one side become poppable on the other only after the (batched,
/// non-blocking) DMA completes.
class MessageChannel {
 public:
  MessageChannel(sim::Simulation& sim, nic::DmaEngine& dma,
                 std::size_t ring_bytes = 1 << 20);

  /// NIC -> host.  Returns the core-side cost to charge (command post).
  /// Fails with nullopt when the ring is full (caller retries later).
  std::optional<Ns> nic_send(const ChannelMsg& msg);
  /// Host -> NIC.
  std::optional<Ns> host_send(const ChannelMsg& msg);

  /// Receive sides (nullopt when nothing is visible yet).
  std::optional<ChannelMsg> host_poll();
  std::optional<ChannelMsg> nic_poll();

  [[nodiscard]] bool host_has_data() const noexcept;
  [[nodiscard]] bool nic_has_data() const noexcept;

  [[nodiscard]] const ChannelRing& to_host_ring() const noexcept { return to_host_; }
  [[nodiscard]] const ChannelRing& to_nic_ring() const noexcept { return to_nic_; }
  [[nodiscard]] std::uint64_t send_failures() const noexcept { return send_failures_; }

  /// Callbacks fired (via the event queue) when a message becomes visible
  /// on the respective side — used to wake parked poller cores.
  void set_host_notify(std::function<void()> fn) { host_notify_ = std::move(fn); }
  void set_nic_notify(std::function<void()> fn) { nic_notify_ = std::move(fn); }

 private:
  struct Pending {
    Ns visible_at;
  };

  std::optional<Ns> send(ChannelRing& ring, std::deque<Pending>& vis,
                         const ChannelMsg& msg, std::function<void()>* notify);
  std::optional<ChannelMsg> poll(ChannelRing& ring, std::deque<Pending>& vis);

  sim::Simulation& sim_;
  nic::DmaEngine& dma_;
  ChannelRing to_host_;
  ChannelRing to_nic_;
  std::deque<Pending> to_host_visibility_;
  std::deque<Pending> to_nic_visibility_;
  std::function<void()> host_notify_;
  std::function<void()> nic_notify_;
  std::uint64_t send_failures_ = 0;
};

}  // namespace ipipe
