// google-benchmark microbenchmarks for the hot data structures and
// primitives: wall-clock cost of the *real* implementations (these
// complement the simulated-time figures — they show the framework's own
// code is cheap enough to simulate large runs).
#include <benchmark/benchmark.h>

#include "apps/dt/hashtable.h"
#include "apps/nf/count_min.h"
#include "apps/nf/lpm_trie.h"
#include "apps/nf/maglev.h"
#include "apps/nf/tcam.h"
#include "apps/rkv/lsm.h"
#include "apps/rkv/skiplist.h"
#include "apps/rta/regex.h"
#include "common/rng.h"
#include "common/stats.h"
#include "crypto/aes.h"
#include "crypto/crc32.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "ipipe/channel.h"
#include "ipipe/dmo.h"

// Minimal ActorEnv for data-structure benches (no simulation attached).
#include "../tests/fake_env.h"

namespace ipipe {
namespace {

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(8192);

void BM_Md5(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Md5::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(1024)->Arg(8192);

void BM_Sha1(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(8192);

void BM_AesCtr(benchmark::State& state) {
  const std::vector<std::uint8_t> key(32, 0x42);
  crypto::Aes aes(key);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)), 0x55);
  std::array<std::uint8_t, 16> ctr{};
  for (auto _ : state) {
    crypto::aes_ctr_crypt(aes, ctr, buf, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(1024)->Arg(8192);

void BM_SkipListInsert(benchmark::State& state) {
  test::FakeEnv env(1, 512 * MiB);
  rkv::DmoSkipList list;
  list.create(env);
  Rng rng(1);
  std::vector<std::uint8_t> value(64, 7);
  std::uint64_t i = 0;
  for (auto _ : state) {
    list.insert(env, "key" + std::to_string(rng.uniform_u64(100'000) + i), value);
    ++i;
  }
}
BENCHMARK(BM_SkipListInsert);

void BM_SkipListGet(benchmark::State& state) {
  test::FakeEnv env(1, 512 * MiB);
  rkv::DmoSkipList list;
  list.create(env);
  Rng rng(1);
  std::vector<std::uint8_t> value(64, 7);
  for (int i = 0; i < 10'000; ++i) {
    list.insert(env, "key" + std::to_string(i), value);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        list.get(env, "key" + std::to_string(rng.uniform_u64(10'000))));
  }
}
BENCHMARK(BM_SkipListGet);

void BM_ExtendibleHashPut(benchmark::State& state) {
  test::FakeEnv env(1, 512 * MiB);
  dt::DmoHashTable table;
  table.create(env, 4);
  Rng rng(2);
  const std::vector<std::uint8_t> value(32, 9);
  for (auto _ : state) {
    table.put(env, "k" + std::to_string(rng.uniform_u64(100'000)), value);
  }
}
BENCHMARK(BM_ExtendibleHashPut);

void BM_TcamLookup(benchmark::State& state) {
  nf::SoftTcam tcam;
  Rng rng(3);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    nf::TcamRule rule{};
    rule.value.dst_ip = static_cast<std::uint32_t>(rng.next());
    rule.mask.dst_ip = 0xFFFFFF00;
    rule.priority = static_cast<std::uint32_t>(i);
    tcam.add_rule(rule);
  }
  for (auto _ : state) {
    nf::FiveTuple t;
    t.dst_ip = static_cast<std::uint32_t>(rng.next());
    benchmark::DoNotOptimize(tcam.lookup(t));
  }
}
BENCHMARK(BM_TcamLookup)->Arg(512)->Arg(8192);

void BM_LpmLookup(benchmark::State& state) {
  nf::LpmTrie trie;
  Rng rng(4);
  for (int i = 0; i < 100'000; ++i) {
    trie.insert(static_cast<std::uint32_t>(rng.next()),
                8 + static_cast<unsigned>(rng.uniform_u64(17)), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(static_cast<std::uint32_t>(rng.next())));
  }
}
BENCHMARK(BM_LpmLookup);

void BM_MaglevLookup(benchmark::State& state) {
  std::vector<std::string> backends;
  for (int i = 0; i < 16; ++i) backends.push_back("b" + std::to_string(i));
  nf::MaglevTable table(backends);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(rng.next()));
  }
}
BENCHMARK(BM_MaglevLookup);

void BM_RegexSearch(benchmark::State& state) {
  rta::Regex re("[a-z]*ing");
  const std::string text = "the networking application was processing data";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.search(text));
  }
}
BENCHMARK(BM_RegexSearch);

void BM_CountMinAdd(benchmark::State& state) {
  nf::CountMinSketch sketch(64 * 1024, 4);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.add(rng.next()));
  }
}
BENCHMARK(BM_CountMinAdd);

void BM_RegionAllocator(benchmark::State& state) {
  RegionAllocator alloc(0, 256 * MiB);
  Rng rng(7);
  std::vector<std::uint64_t> live;
  for (auto _ : state) {
    if (live.size() > 1000 || (rng.bernoulli(0.4) && !live.empty())) {
      const std::size_t idx = rng.uniform_u64(live.size());
      alloc.free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else if (const auto addr = alloc.alloc(16 + rng.uniform_u64(512))) {
      live.push_back(*addr);
    }
  }
}
BENCHMARK(BM_RegionAllocator);

void BM_ChannelRingRoundTrip(benchmark::State& state) {
  ChannelRing ring(1 << 20);
  const std::vector<std::uint8_t> msg(256, 0xCD);
  for (auto _ : state) {
    ring.push(msg);
    benchmark::DoNotOptimize(ring.pop());
    if (ring.unacked() > ring.capacity() / 2) ring.ack();
  }
}
BENCHMARK(BM_ChannelRingRoundTrip);

void BM_LatencyHistogram(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(8);
  for (auto _ : state) {
    hist.add(1 + rng.uniform_u64(1'000'000));
  }
  benchmark::DoNotOptimize(hist.p99());
}
BENCHMARK(BM_LatencyHistogram);

void BM_LsmGet(benchmark::State& state) {
  rkv::LsmTree lsm;
  Rng rng(9);
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<rkv::SstEntry> entries;
    for (int i = 0; i < 1000; ++i) {
      entries.push_back({"key" + std::to_string(batch * 1000 + i),
                         std::vector<std::uint8_t>(32, 1), false});
    }
    std::sort(entries.begin(), entries.end(),
              [](const rkv::SstEntry& a, const rkv::SstEntry& b) {
                return a.key < b.key;
              });
    lsm.add_l0(std::move(entries));
    lsm.maybe_compact();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm.get("key" + std::to_string(rng.uniform_u64(10'000))));
  }
}
BENCHMARK(BM_LsmGet);

}  // namespace
}  // namespace ipipe

BENCHMARK_MAIN();
