// Tests for the ipipe::trace observability subsystem: tracer ring
// semantics, metrics cadence, exporter output, and the runtime's hooks
// end-to-end through a small cluster run.
#include <gtest/gtest.h>

#include <sstream>
#include <string_view>

#include "common/trace.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

namespace ipipe {
namespace {

using trace::Arg;
using trace::Cat;
using trace::Event;
using trace::MetricsRegistry;
using trace::Snapshot;
using trace::Tracer;

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.instant(Cat::kSched, "demote_to_drr", 0);
  t.span(Cat::kExec, "fcfs_handle", 0, 10, 20);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, RingEvictsOldestAndCountsDrops) {
  Tracer t;
  t.enable(/*capacity=*/16);  // 16 is the tracer's minimum ring size
  std::uint64_t clock = 0;
  t.set_clock(Clock(&clock));
  for (std::uint64_t i = 0; i < 20; ++i) {
    clock = i;
    t.instant(Cat::kSched, "tick", 0, /*actor=*/i);
  }
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.total_recorded(), 20u);
  EXPECT_EQ(t.dropped(), 4u);
  // Oldest-first visit of the retained suffix (events 4..19).
  std::vector<std::uint64_t> actors;
  t.for_each([&](const Event& e) { actors.push_back(e.actor); });
  ASSERT_EQ(actors.size(), 16u);
  for (std::size_t i = 0; i < actors.size(); ++i) {
    EXPECT_EQ(actors[i], 4 + i);
  }
}

TEST(TracerTest, ClockStampsInstantsAndSpansKeepExplicitTimes) {
  Tracer t;
  t.enable(16);
  std::uint64_t clock = 0;
  t.set_clock(Clock(&clock));
  clock = 1234;
  t.instant(Cat::kChannel, "chan_nack", trace::tid::kChanToHost, 0,
            Arg{"seq", 7.0});
  t.span(Cat::kMig, "mig_phase2_drain", 3, 100, 250, /*actor=*/2);
  std::vector<Event> events;
  t.for_each([&](const Event& e) { events.push_back(e); });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts, 1234u);
  EXPECT_EQ(events[0].dur, 0u);
  EXPECT_STREQ(events[0].a0.name, "seq");
  EXPECT_EQ(events[0].a0.value, 7.0);
  EXPECT_EQ(events[1].ts, 100u);
  EXPECT_EQ(events[1].dur, 150u);
  EXPECT_EQ(events[1].actor, 2u);
}

TEST(TracerTest, ClearResetsButKeepsEnabled) {
  Tracer t;
  t.enable(4);
  t.instant(Cat::kDmo, "dmo_trap", trace::tid::kDmo);
  ASSERT_EQ(t.size(), 1u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_TRUE(t.enabled());
}

TEST(MetricsRegistryTest, DueFollowsVirtualTimePeriod) {
  MetricsRegistry m;
  EXPECT_FALSE(m.due(1'000'000));  // period 0 => never due
  m.set_period(100);
  EXPECT_TRUE(m.due(0));  // first snapshot always owed
  Snapshot s;
  s.ts = 0;
  m.record(s);
  EXPECT_FALSE(m.due(99));
  EXPECT_TRUE(m.due(100));
  s.ts = 100;
  m.record(std::move(s));
  EXPECT_FALSE(m.due(150));
  ASSERT_EQ(m.snapshots().size(), 2u);
}

TEST(TraceExportTest, ChromeJsonContainsEventsAndCounters) {
  Tracer t;
  t.enable(64);
  t.instant(Cat::kSched, "demote_to_drr", 0, 3, Arg{"mu_us", 41.5},
            Arg{"sigma_us", 12.0});
  t.span(Cat::kExec, "fcfs_handle", 1, 1000, 5000, 3, Arg{"queue_us", 2.5});

  MetricsRegistry m;
  Snapshot s;
  s.ts = 2000;
  s.fcfs_cores = 3;
  s.drr_cores = 1;
  trace::ActorSample a;
  a.actor = 3;
  a.name = "dist";
  a.lat_mean_ns = 42000.0;
  s.actors.push_back(a);
  m.record(std::move(s));

  std::ostringstream os;
  trace::export_chrome_json(os, t, &m, /*pid=*/7);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("demote_to_drr"), std::string::npos);
  EXPECT_NE(json.find("fcfs_handle"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(json.find("mu_us"), std::string::npos);
  // Balanced outer document: last non-whitespace char closes the object.
  const auto last = json.find_last_not_of(" \n\t");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
}

TEST(TraceExportTest, TextDumpListsEventsAndSnapshots) {
  Tracer t;
  t.enable(8);
  t.instant(Cat::kMig, "migration_start", 0, 5);
  MetricsRegistry m;
  Snapshot s;
  s.ts = 500;
  m.record(std::move(s));
  std::ostringstream os;
  trace::export_text(os, t, &m);
  const std::string text = os.str();
  EXPECT_NE(text.find("migration_start"), std::string::npos);
  EXPECT_NE(text.find("snapshot"), std::string::npos);
}

// End-to-end: a traced cluster run must produce exec spans, scheduler
// bookkeeping counters and periodic metrics snapshots — and an untraced
// run must produce byte-identical virtual-time results (zero cost).
class TraceRuntimeTest : public ::testing::Test {
 protected:
  struct Outcome {
    std::uint64_t completed = 0;
    Ns p99 = 0;
  };

  Outcome run(bool traced, Runtime** out_rt = nullptr,
              testbed::Cluster* cluster_storage = nullptr) {
    testbed::Cluster local;
    testbed::Cluster& cluster = cluster_storage ? *cluster_storage : local;
    testbed::ServerSpec spec;
    spec.ipipe.trace = traced;
    spec.ipipe.trace_metrics_period = usec(200);
    auto& server = cluster.add_server(spec);

    class Burn final : public Actor {
     public:
      Burn() : Actor("burn") {}
      void handle(ActorEnv& env, const netsim::Packet& req) override {
        env.charge(usec(10));
        env.reply(req, 2, {});
      }
    };
    const ActorId id =
        server.runtime().register_actor(std::make_unique<Burn>());
    workloads::EchoWorkloadParams wl;
    wl.server = 0;
    wl.actor = id;
    wl.msg_type = 1;
    auto& client = cluster.add_client(10.0, workloads::echo_workload(wl));
    client.start_closed_loop(4, msec(10));
    cluster.run_until(msec(12));
    if (out_rt) *out_rt = &server.runtime();
    return {client.completed(), client.latencies().p99()};
  }
};

TEST_F(TraceRuntimeTest, RuntimeHooksRecordExecSpansAndSnapshots) {
  testbed::Cluster cluster;
  Runtime* rt = nullptr;
  const Outcome out = run(/*traced=*/true, &rt, &cluster);
  ASSERT_NE(rt, nullptr);
  EXPECT_GT(out.completed, 100u);

  ASSERT_TRUE(rt->tracer().enabled());
  EXPECT_GT(rt->tracer().total_recorded(), 0u);
  bool saw_exec_span = false;
  rt->tracer().for_each([&](const Event& e) {
    if (e.cat == Cat::kExec && e.dur > 0 &&
        std::string_view(e.name) == "fcfs_handle") {
      saw_exec_span = true;
    }
  });
  EXPECT_TRUE(saw_exec_span);

  // 10ms run / 200us cadence => tens of snapshots, each covering the actor.
  const auto& snaps = rt->metrics().snapshots();
  ASSERT_GT(snaps.size(), 10u);
  ASSERT_EQ(snaps.back().actors.size(), 1u);
  EXPECT_EQ(snaps.back().actors[0].name, "burn");
  EXPECT_GT(snaps.back().actors[0].requests, 0u);
  EXPECT_GT(snaps.back().fcfs_cores, 0u);
}

TEST_F(TraceRuntimeTest, TracingIsZeroCostInVirtualTime) {
  const Outcome off = run(false);
  const Outcome on = run(true);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.p99, on.p99);
}

}  // namespace
}  // namespace ipipe
