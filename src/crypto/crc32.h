// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
// Used for message-channel integrity checksums (§3.5) and as the CRC
// accelerator's functional model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ipipe::crypto {

/// One-shot CRC32 of `data`, with optional chaining via `seed` (pass a
/// previous crc32 result to continue over concatenated buffers).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace ipipe::crypto
