// Discrete-event simulation engine.
//
// Every component of the testbed (NIC cores, hosts, links, switches,
// clients) is driven by events scheduled on a single `Simulation`.  Events
// at the same timestamp execute in scheduling (FIFO) order, which makes
// runs fully deterministic for a given seed.
//
// Hot-path design (the entire reproduction is bottlenecked here):
//  * Events are `InlineFn` callables — captures up to 48B live inline in
//    the event slot, so the schedule/execute path performs no heap
//    allocation and accepts move-only captures (e.g. PacketPtr).
//  * Callables live in pooled, generation-stamped slots.  An EventId
//    encodes (slot index, generation); cancel() bumps the generation —
//    O(1), no hashing — and the dead chain node is skipped when it
//    surfaces.  The old design paid two unordered_set operations per
//    event for the same tombstoning.
//  * The priority queue is a 4-ary heap of 24-byte PODs, but it holds one
//    entry per *distinct pending timestamp*, not per event: all events
//    sharing a timestamp form an intrusive FIFO chain through their slots
//    (chain order == scheduling order, so the FIFO tie-break is
//    structural).  Simulated costs are quantized, so a busy node has few
//    distinct times pending at once — most schedules append to an existing
//    chain in O(1) via a small direct-mapped timestamp cache and never
//    touch the heap.  Buckets for one timestamp never interleave: a
//    bucket only receives appends while cached, so a later bucket's
//    events all carry later schedule order and the per-bucket creation
//    sequence number is a correct global tie-break.
//  * Cancelled events tombstone in place; when tombstones outnumber live
//    events the chains are swept and the heap rebuilt, so schedule/cancel
//    churn cannot grow the queue unboundedly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/inline_fn.h"
#include "common/units.h"

namespace ipipe::sim {

using EventFn = InlineFn;
/// Encodes (slot << 32) | generation.  Generations start at 1, so 0 never
/// names a real event and can serve as an "unset" sentinel.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation() = default;

  /// Current simulated time.
  [[nodiscard]] Ns now() const noexcept { return now_; }

  /// A readable view of the simulation clock, for components that need
  /// timestamps but must not depend on the engine (e.g. trace::Tracer).
  [[nodiscard]] Clock clock() const noexcept { return Clock(&now_); }

  /// Schedule `fn` to run `delay` ns from now.  Returns a handle usable
  /// with `cancel`.
  EventId schedule(Ns delay, EventFn fn);

  /// Schedule `fn` at an absolute timestamp (must be >= now()).
  EventId schedule_at(Ns when, EventFn fn);

  /// Cancel a pending event.  Returns false if it already ran or was
  /// cancelled.  O(1): the generation is bumped and the chain node
  /// becomes a tombstone (reclaimed lazily or by compaction).
  bool cancel(EventId id) noexcept;

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first).  Returns the time at which the run stopped.
  Ns run(Ns until = ~Ns{0});

  /// Execute a single event.  Returns false when the queue is empty or the
  /// head event is beyond `until`.
  bool step(Ns until = ~Ns{0});

  /// Execute a single event strictly before `bound`.  Returns false when
  /// the queue is empty or the head event is at/after `bound`.  This is
  /// the conservative-window primitive: a parallel domain may run
  /// everything below its safe horizon but nothing at it.
  bool step_before(Ns bound);

  /// Execute every event with timestamp < `bound` (including events the
  /// callbacks schedule inside the window).  The clock is left at the
  /// last executed event, never advanced to `bound`.  Returns the number
  /// of events executed.
  std::uint64_t run_before(Ns bound);

  /// Timestamp of the earliest pending event, or ~Ns{0} when the queue is
  /// empty.  Prunes cancelled chain heads / stale heap entries while
  /// peeking, so repeated calls stay O(1) amortized.
  [[nodiscard]] Ns next_event_time() noexcept;

  /// Advance the clock to `t` without executing anything.  `t` must not
  /// be in the past and must not skip over a pending event.
  void advance_to(Ns t) noexcept;

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Total events cancelled so far.
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }

  /// Heap occupancy (one entry per distinct pending timestamp, plus any
  /// stale entries awaiting reclamation).  Regression tests assert this
  /// stays bounded under schedule/cancel churn.
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }

  /// High-water mark of the slot pool (live + tombstoned + free).  Bounded
  /// under churn: compaction reclaims tombstones once they outnumber live
  /// events.
  [[nodiscard]] std::size_t slot_count() const noexcept { return slot_count_; }

 private:
  /// One entry per distinct pending timestamp; `bseq` is the bucket
  /// creation sequence, a correct global FIFO tie-break (see file header).
  struct HeapEntry {
    Ns when;
    std::uint64_t bseq;
    std::uint32_t bucket;
    std::uint32_t bgen;
  };
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;  // bumped when the event runs or is cancelled
    /// FIFO chain link while queued; freelist link while free.
    std::uint32_t next = kNoIndex;
  };
  /// An intrusive FIFO of every pending event at one timestamp.
  struct Bucket {
    Ns when = 0;
    std::uint64_t bseq = 0;
    std::uint32_t head = kNoIndex;
    std::uint32_t tail = kNoIndex;
    std::uint32_t gen = 1;  // bumped when the bucket drains
    std::uint32_t next_free = kNoIndex;
  };
  /// Direct-mapped timestamp → open-bucket cache.  Lossy by design: an
  /// evicted timestamp simply opens a fresh bucket on its next schedule.
  struct CacheEntry {
    Ns when = 0;
    std::uint32_t bucket = kNoIndex;
    std::uint32_t bgen = 0;  // real generations start at 1: never matches
  };
  static constexpr std::uint32_t kNoIndex = ~std::uint32_t{0};
  static constexpr std::size_t kCacheSize = 256;  // power of two
  /// Slots live in fixed-size chunks with stable addresses: growing the
  /// pool never relocates live callables (relocation was 25% of schedule
  /// cost as a flat vector).
  static constexpr std::uint32_t kSlotChunkShift = 8;
  static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkShift;

  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.bseq < b.bseq;
  }

  [[nodiscard]] Slot& slot(std::uint32_t i) noexcept {
    return slot_chunks_[i >> kSlotChunkShift][i & (kSlotChunkSize - 1)];
  }

  std::uint32_t acquire_slot();
  void free_slot(std::uint32_t slot) noexcept;
  std::uint32_t acquire_bucket();
  void free_bucket(std::uint32_t bucket) noexcept;
  void heap_push(HeapEntry e);
  void heap_pop_min() noexcept;
  void sift_down(std::size_t i) noexcept;
  /// Unlink cancelled chain nodes, drop drained buckets, re-heapify (runs
  /// when tombstones outnumber live events).
  void compact();

  Ns now_ = 0;
  std::uint64_t next_bseq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;  ///< scheduled and neither run nor cancelled
  std::size_t dead_ = 0;  ///< cancelled tombstones still chained
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<Bucket> buckets_;
  std::uint32_t slot_free_ = kNoIndex;
  std::uint32_t bucket_free_ = kNoIndex;
  CacheEntry cache_[kCacheSize];
};

/// A handle that re-arms a callback on a fixed period until stopped.
/// Useful for pollers (host runtime cores, statistics scrapers).
class PeriodicTask {
 public:
  PeriodicTask(Simulation& sim, Ns period, EventFn fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  /// Cancels the armed event: a destroyed task must never leave a
  /// callback capturing `this` in the queue.
  ~PeriodicTask() { stop(); }

  void start() {
    running_ = true;
    arm();
  }
  void stop() noexcept {
    running_ = false;
    if (armed_ != kInvalidEvent) {
      sim_.cancel(armed_);
      armed_ = kInvalidEvent;
    }
  }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void arm() {
    armed_ = sim_.schedule(period_, [this] {
      armed_ = kInvalidEvent;
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }

  Simulation& sim_;
  Ns period_;
  EventFn fn_;
  EventId armed_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace ipipe::sim
