#include "workloads/open_loop.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "apps/rkv/rkv_messages.h"

namespace ipipe::workloads {

namespace {

constexpr std::size_t kCheckerHeader = 20;  // [key u32][seq u64][rid u64]
constexpr std::size_t kCopyWindow = 32;     // concurrent rebalance copy chains

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[off + static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace

OpenLoopGen::OpenLoopGen(sim::Simulation& sim, netsim::Network& net,
                         netsim::NodeId self, OpenLoopParams params)
    : sim_(sim),
      net_(net),
      self_(self),
      params_(params),
      rng_(params.seed),
      zipf_(params.key_space, params.zipf_theta),
      keys_(params.key_space),
      client_seen_(params.clients, false) {
  assert(params_.value_len >= kCheckerHeader &&
         "value too small for the checker header");
  assert(static_cast<std::uint64_t>(self_) <= RequestId::kMaxNode);
  net_.attach(self_, *this, params_.link_gbps);
}

OpenLoopGen::~OpenLoopGen() { net_.detach(self_); }

void OpenLoopGen::set_route_table(shard::RouteTable table) {
  table_ = std::move(table);
}

void OpenLoopGen::start(Ns stop_at) {
  stop_at_ = stop_at;
  schedule_next_arrival();
}

void OpenLoopGen::schedule_next_arrival() {
  if (sim_.now() >= stop_at_) return;
  double rate = params_.rate_rps;
  if (params_.diurnal_amplitude > 0.0 && params_.diurnal_period > 0) {
    const double phase = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(sim_.now()) /
                         static_cast<double>(params_.diurnal_period);
    rate *= 1.0 + params_.diurnal_amplitude * std::sin(phase);
  }
  rate = std::max(rate, 1.0);
  const Ns gap =
      std::max<Ns>(1, static_cast<Ns>(rng_.exponential(1e9 / rate)));
  sim_.schedule(gap, [this] {
    on_arrival();
    schedule_next_arrival();
  });
}

void OpenLoopGen::on_arrival() {
  if (sim_.now() >= stop_at_) return;
  // RNG draw order is part of the deterministic contract: client, key,
  // op coin — always all three, even if the op ends up queued.
  const std::uint64_t client = rng_.uniform_u64(params_.clients);
  const auto key = static_cast<std::uint32_t>(zipf_(rng_));
  const bool is_get = rng_.uniform() < params_.get_fraction;
  if (!client_seen_[client]) {
    client_seen_[client] = true;
    ++distinct_clients_;
  }
  if (is_get) {
    issue_get(key, /*readback=*/false);
  } else {
    issue_put(key);
  }
}

std::vector<std::uint8_t> OpenLoopGen::make_value(std::uint32_t key_id,
                                                  std::uint64_t write_seq,
                                                  std::uint64_t rid) const {
  std::vector<std::uint8_t> v;
  v.reserve(params_.value_len);
  put_u32(v, key_id);
  put_u64(v, write_seq);
  put_u64(v, rid);
  // Padding is a pure function of the key so rebalance copies (which
  // re-PUT the value verbatim) remain byte-comparable.
  for (std::size_t i = v.size(); i < params_.value_len; ++i) {
    v.push_back(static_cast<std::uint8_t>((key_id + i) & 0xFF));
  }
  return v;
}

void OpenLoopGen::issue_get(std::uint32_t key_id, bool readback) {
  const std::string key = key_name(key_id);
  const std::uint32_t shard = shard::shard_of_key(key, table_.num_shards);
  if (frozen(shard)) {
    queued_.push_back({key_id, /*is_put=*/false, /*owns_write_slot=*/false});
    return;
  }
  const std::uint32_t group = table_.group_of(shard);
  if (group >= groups_.size()) {
    ++server_errors_;  // unowned shard: misconfigured table
    return;
  }
  rkv::ClientReq req;
  req.op = rkv::Op::kGet;
  req.key = key;
  OpRec rec;
  rec.kind = Kind::kGet;
  rec.key_id = key_id;
  rec.shard = shard;
  rec.group = group;
  rec.issued_floor = keys_[key_id].floor_seq;
  rec.readback = readback;
  if (readback) ++readback_pending_;
  netsim::NodeId dst = 0;
  netsim::ActorId actor = 0;
  route(groups_[group], dst, actor);
  ++gets_sent_;
  transmit(std::move(rec), rkv::kClientGet, req.encode(), dst, actor,
           /*client_visible=*/true);
}

void OpenLoopGen::issue_put(std::uint32_t key_id) {
  KeyState& ks = keys_[key_id];
  if (ks.write_inflight) {
    // Per-key write serialization: the checker's floor tracking needs
    // acked writes on a key to be totally ordered, so a new write waits
    // for the previous ack (collapsed into a pending count).
    if (ks.pending_writes < 0xFFFF) ++ks.pending_writes;
    return;
  }
  ks.write_inflight = true;
  const std::uint32_t shard =
      shard::shard_of_key(key_name(key_id), table_.num_shards);
  if (frozen(shard)) {
    queued_.push_back({key_id, /*is_put=*/true, /*owns_write_slot=*/true});
    return;
  }
  send_put(key_id);
}

void OpenLoopGen::send_put(std::uint32_t key_id) {
  KeyState& ks = keys_[key_id];
  const std::string key = key_name(key_id);
  const std::uint32_t shard = shard::shard_of_key(key, table_.num_shards);
  const std::uint32_t group = table_.group_of(shard);
  if (group >= groups_.size()) {
    ++server_errors_;
    complete_write_slot(key_id);
    return;
  }
  const std::uint64_t rid = RequestId::make(self_, next_seq_++);
  const std::uint64_t seq = ks.next_seq++;
  rkv::ClientReq req;
  req.op = rkv::Op::kPut;
  req.key = key;
  req.value = make_value(key_id, seq, rid);
  OpRec rec;
  rec.kind = Kind::kPut;
  rec.key_id = key_id;
  rec.shard = shard;
  rec.group = group;
  rec.write_seq = seq;
  netsim::NodeId dst = 0;
  netsim::ActorId actor = 0;
  route(groups_[group], dst, actor);
  ++puts_sent_;
  transmit_with_rid(rid, std::move(rec), rkv::kClientPut, req.encode(), dst,
                    actor, /*client_visible=*/true);
}

void OpenLoopGen::transmit(OpRec rec, std::uint16_t msg_type,
                           std::vector<std::uint8_t> payload,
                           netsim::NodeId dst, netsim::ActorId dst_actor,
                           bool client_visible) {
  const std::uint64_t rid = RequestId::make(self_, next_seq_++);
  transmit_with_rid(rid, std::move(rec), msg_type, std::move(payload), dst,
                    dst_actor, client_visible);
}

void OpenLoopGen::transmit_with_rid(std::uint64_t rid, OpRec rec,
                                    std::uint16_t msg_type,
                                    std::vector<std::uint8_t> payload,
                                    netsim::NodeId dst,
                                    netsim::ActorId dst_actor,
                                    bool client_visible) {
  auto pkt = net_.pool().make();
  pkt->src = self_;
  pkt->dst = dst;
  pkt->dst_actor = dst_actor;
  pkt->msg_type = msg_type;
  pkt->request_id = rid;
  pkt->created_at = sim_.now();
  pkt->frame_size = static_cast<std::uint32_t>(128 + payload.size());
  pkt->payload = std::move(payload);
  rec.created = sim_.now();
  rec.cur_timeout = params_.retry_timeout;
  rec.copy = *pkt;
  ++sent_;
  if (client_visible && on_issue_) on_issue_(*pkt);
  inflight_.emplace(rid, std::move(rec));
  net_.send(std::move(pkt));
  arm_retry(rid, 1);
}

void OpenLoopGen::arm_retry(std::uint64_t rid, unsigned attempt) {
  const auto it = inflight_.find(rid);
  if (it == inflight_.end()) return;
  sim_.schedule(it->second.cur_timeout,
                [this, rid, attempt] { on_retry_timeout(rid, attempt); });
}

void OpenLoopGen::rotate_hint(std::uint32_t group) {
  if (group >= groups_.size()) return;
  ShardTarget& g = groups_[group];
  if (g.replicas.empty()) return;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < g.replicas.size(); ++i) {
    if (g.replicas[i] == g.leader_hint) {
      idx = i;
      break;
    }
  }
  g.leader_hint = g.replicas[(idx + 1) % g.replicas.size()];
}

void OpenLoopGen::on_retry_timeout(std::uint64_t rid, unsigned attempt) {
  const auto it = inflight_.find(rid);
  if (it == inflight_.end() || it->second.attempts != attempt) return;
  OpRec& rec = it->second;
  if (rec.attempts > params_.max_retries) {
    OpRec dead = std::move(rec);
    inflight_.erase(it);
    abandon(rid, std::move(dead));
    return;
  }
  ++rec.attempts;
  ++retransmits_;
  rec.cur_timeout = std::min<Ns>(
      static_cast<Ns>(static_cast<double>(rec.cur_timeout) *
                      params_.retry_backoff),
      params_.retry_cap);
  // From the second timeout on, walk the replica set: the hinted leader
  // may be crashed, and any live replica will redirect us properly.
  if (rec.attempts >= 3 && rec.group < groups_.size()) {
    rotate_hint(rec.group);
    rec.copy.dst = groups_[rec.group].leader_hint;
  }
  net_.send(net_.pool().make(rec.copy));
  arm_retry(rid, rec.attempts);
}

void OpenLoopGen::abandon(std::uint64_t rid, OpRec rec) {
  (void)rid;
  note_drained(rec);
  rotate_hint(rec.group);
  switch (rec.kind) {
    case Kind::kGet:
      if (rec.readback && readback_pending_ > 0) --readback_pending_;
      break;
    case Kind::kPut:
      // The write may still commit later (a stuck slot re-driven after a
      // leader change), so the floor is no longer trustworthy: suspend
      // checks on this key until the next acked write re-establishes it.
      ++abandoned_writes_;
      keys_[rec.key_id].floor_seq = 0;
      complete_write_slot(rec.key_id);
      break;
    case Kind::kCfg:
      ++cfg_retries_;
      reissue(std::move(rec));
      break;
    case Kind::kCopyGet:
    case Kind::kCopyPut:
      ++copy_retries_;
      reissue(std::move(rec));
      break;
  }
}

void OpenLoopGen::reissue(OpRec rec) {
  // Rebalance control ops must eventually land: re-run the op under a
  // fresh request id (the old one may be half-applied; both are
  // idempotent — config re-applies by epoch, copies re-put the same
  // value).
  const std::uint64_t rid = RequestId::make(self_, next_seq_++);
  rec.attempts = 1;
  rec.redirects = 0;
  rec.cur_timeout = params_.retry_timeout;
  if (rec.group < groups_.size()) {
    rec.copy.dst = groups_[rec.group].leader_hint;
  }
  rec.copy.request_id = rid;
  rec.copy.created_at = sim_.now();
  rec.created = sim_.now();
  auto pkt = net_.pool().make(rec.copy);
  ++sent_;
  inflight_.emplace(rid, std::move(rec));
  net_.send(std::move(pkt));
  arm_retry(rid, 1);
}

void OpenLoopGen::complete_write_slot(std::uint32_t key_id) {
  KeyState& ks = keys_[key_id];
  ks.write_inflight = false;
  if (ks.pending_writes > 0) {
    --ks.pending_writes;
    issue_put(key_id);
  }
}

void OpenLoopGen::note_drained(const OpRec& rec) {
  if (!rec.counts_drain || drain_inflight_ == 0) return;
  --drain_inflight_;
  if (rphase_ == RebalPhase::kDrain && drain_inflight_ == 0) begin_grant();
}

void OpenLoopGen::receive(netsim::PacketPtr pkt) {
  const auto it = inflight_.find(pkt->request_id);
  if (it == inflight_.end()) {
    for (const auto& fn : on_reply_) fn(*pkt);
    return;  // duplicate reply or unsolicited traffic
  }
  const auto rep = rkv::ClientReply::decode(pkt->payload);
  if (!rep) {
    for (const auto& fn : on_reply_) fn(*pkt);
    return;  // undecodable: leave the op to its retry timer
  }

  OpRec& rec = it->second;
  // --- non-final statuses: re-steer in place, keep the op in flight ----
  if (rep->status == rkv::Status::kNotLeader) {
    ++notleader_redirects_;
    if (!rep->value.empty() && rec.group < groups_.size()) {
      // The hint byte is a replica INDEX (ballots are partitioned by
      // replica index), not a node id.
      const auto idx = static_cast<std::size_t>(rep->value[0]);
      ShardTarget& g = groups_[rec.group];
      if (idx < g.replicas.size()) g.leader_hint = g.replicas[idx];
    }
    if (rec.redirects < params_.max_redirects &&
        rec.group < groups_.size()) {
      ++rec.redirects;
      rec.copy.dst = groups_[rec.group].leader_hint;
      net_.send(net_.pool().make(rec.copy));
    }
    for (const auto& fn : on_reply_) fn(*pkt);
    return;
  }
  if (rep->status == rkv::Status::kWrongShard) {
    ++wrong_shard_retries_;
    // Stale route: re-resolve against our current table.  If the table
    // agrees with the rejected target the SERVER is behind (a new
    // leader still catching up on the config entry) — leave the retry
    // timer to re-drive it.
    if ((rec.kind == Kind::kGet || rec.kind == Kind::kPut) &&
        rec.redirects < params_.max_redirects) {
      const std::uint32_t group = table_.group_of(rec.shard);
      if (group != rec.group && group < groups_.size()) {
        ++rec.redirects;
        rec.group = group;
        netsim::NodeId dst = 0;
        netsim::ActorId actor = 0;
        route(groups_[group], dst, actor);
        rec.copy.dst = dst;
        rec.copy.dst_actor = actor;
        net_.send(net_.pool().make(rec.copy));
      }
    }
    for (const auto& fn : on_reply_) fn(*pkt);
    return;
  }

  // --- final statuses: the op completes -------------------------------
  OpRec done = std::move(it->second);
  inflight_.erase(it);
  note_drained(done);
  const Ns latency = sim_.now() - done.created;
  const bool client_visible =
      done.kind == Kind::kGet || done.kind == Kind::kPut;
  if (client_visible) {
    ++completed_;
    if (!done.readback && sim_.now() >= warmup_until_) {
      hist_.add(latency);
      ++completed_measured_;
    }
  }

  switch (done.kind) {
    case Kind::kGet: {
      if (done.readback && readback_pending_ > 0) --readback_pending_;
      KeyState& ks = keys_[done.key_id];
      if (rep->status == rkv::Status::kOk) {
        if (rep->value.size() >= kCheckerHeader) {
          const std::uint64_t seen = get_u64(rep->value, 4);
          if (done.issued_floor > 0 && seen < done.issued_floor) {
            ++stale_reads_;  // served a value older than an acked write
          }
          // An observed value is committed state: later reads must not
          // go below it, so it may re-arm a suspended floor.
          ks.floor_seq = std::max(ks.floor_seq, seen);
        } else {
          ++server_errors_;  // value does not carry our header
        }
      } else if (rep->status == rkv::Status::kNotFound) {
        if (done.issued_floor > 0) ++lost_acked_;
      } else {
        ++server_errors_;
      }
      break;
    }
    case Kind::kPut: {
      KeyState& ks = keys_[done.key_id];
      if (rep->status == rkv::Status::kOk) {
        ++acked_writes_;
        ks.floor_seq = std::max(ks.floor_seq, done.write_seq);
      } else {
        // Explicit rejection with unknown commit state (a racing retry
        // may have landed): suspend the floor like an abandon.
        ++server_errors_;
        ks.floor_seq = 0;
      }
      complete_write_slot(done.key_id);
      break;
    }
    case Kind::kCfg: {
      if (rep->status == rkv::Status::kOk) {
        if (pending_cfg_ > 0) --pending_cfg_;
        if (pending_cfg_ == 0) {
          if (rphase_ == RebalPhase::kGrant) {
            begin_copy();
          } else if (rphase_ == RebalPhase::kRevoke) {
            finish_rebalance();
          }
        }
      } else {
        ++cfg_retries_;
        reissue(std::move(done));
      }
      break;
    }
    case Kind::kCopyGet: {
      if (rep->status == rkv::Status::kOk) {
        send_copy_put(done.key_id, rep->value);
      } else if (rep->status == rkv::Status::kNotFound) {
        copy_chain_done();  // write never committed; nothing to move
      } else {
        ++copy_retries_;
        reissue(std::move(done));
      }
      break;
    }
    case Kind::kCopyPut: {
      if (rep->status == rkv::Status::kOk) {
        copy_chain_done();
      } else {
        ++copy_retries_;
        reissue(std::move(done));
      }
      break;
    }
  }
  for (const auto& fn : on_reply_) fn(*pkt);
}

// ------------------------------------------------------------- rebalance --

void OpenLoopGen::start_rebalance(shard::RouteTable next,
                                  std::function<void()> done) {
  assert(rphase_ == RebalPhase::kIdle && "rebalance already running");
  assert(next.epoch > table_.epoch && "epoch must advance");
  next_table_ = std::move(next);
  on_rebalance_done_ = std::move(done);
  moved_.clear();
  for (const auto s : shard::RouteTable::moved(table_, next_table_)) {
    moved_.insert(s);
  }
  if (moved_.empty()) {
    table_ = next_table_;
    ++rebalances_done_;
    if (on_rebalance_done_) on_rebalance_done_();
    return;
  }
  rphase_ = RebalPhase::kDrain;
  drain_inflight_ = 0;
  for (auto& [rid, rec] : inflight_) {
    (void)rid;
    if ((rec.kind == Kind::kGet || rec.kind == Kind::kPut) &&
        moved_.count(rec.shard) != 0) {
      rec.counts_drain = true;
      ++drain_inflight_;
    }
  }
  if (drain_inflight_ == 0) begin_grant();
}

void OpenLoopGen::begin_grant() {
  rphase_ = RebalPhase::kGrant;
  pending_cfg_ = 0;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    const auto old_owned = table_.shards_of(g);
    const auto new_owned = next_table_.shards_of(g);
    bool gains = false;
    for (const auto s : new_owned) {
      if (std::find(old_owned.begin(), old_owned.end(), s) ==
          old_owned.end()) {
        gains = true;
        break;
      }
    }
    if (!gains) continue;
    // Additive grant: the union of old and new ownership, so both old
    // and new owner accept the moved shards while the copy runs.
    std::vector<std::uint32_t> uni = old_owned;
    uni.insert(uni.end(), new_owned.begin(), new_owned.end());
    std::sort(uni.begin(), uni.end());
    uni.erase(std::unique(uni.begin(), uni.end()), uni.end());
    send_cfg(g, std::move(uni));
    ++pending_cfg_;
  }
  if (pending_cfg_ == 0) begin_copy();
}

void OpenLoopGen::send_cfg(std::uint32_t group,
                           std::vector<std::uint32_t> owned) {
  rkv::ShardView view;
  view.epoch = next_table_.epoch;
  view.num_shards = table_.num_shards;
  view.owned = std::move(owned);
  rkv::ClientReq req;
  req.op = rkv::Op::kShardCfg;
  req.value = view.encode();
  OpRec rec;
  rec.kind = Kind::kCfg;
  rec.group = group;
  transmit(std::move(rec), rkv::kClientPut, req.encode(),
           groups_[group].leader_hint, groups_[group].consensus,
           /*client_visible=*/false);
}

void OpenLoopGen::begin_copy() {
  rphase_ = RebalPhase::kCopy;
  copy_keys_.clear();
  copy_cursor_ = 0;
  pending_copies_ = 0;
  for (std::uint32_t k = 0; k < keys_.size(); ++k) {
    if (keys_[k].next_seq <= 1) continue;  // never written
    const std::uint32_t shard =
        shard::shard_of_key(key_name(k), table_.num_shards);
    if (moved_.count(shard) != 0) copy_keys_.push_back(k);
  }
  start_copy_chains();
  if (copy_keys_.empty()) begin_revoke();
}

void OpenLoopGen::start_copy_chains() {
  while (pending_copies_ < kCopyWindow && copy_cursor_ < copy_keys_.size()) {
    ++pending_copies_;
    send_copy_get(copy_keys_[copy_cursor_++]);
  }
}

void OpenLoopGen::copy_chain_done() {
  if (pending_copies_ > 0) --pending_copies_;
  start_copy_chains();
  if (pending_copies_ == 0 && copy_cursor_ >= copy_keys_.size() &&
      rphase_ == RebalPhase::kCopy) {
    begin_revoke();
  }
}

void OpenLoopGen::send_copy_get(std::uint32_t key_id) {
  const std::string key = key_name(key_id);
  const std::uint32_t shard = shard::shard_of_key(key, table_.num_shards);
  const std::uint32_t group = table_.group_of(shard);  // OLD owner
  rkv::ClientReq req;
  req.op = rkv::Op::kGet;
  req.key = key;
  OpRec rec;
  rec.kind = Kind::kCopyGet;
  rec.key_id = key_id;
  rec.shard = shard;
  rec.group = group;
  // Straight to consensus: ownership handoff reads bypass the cache.
  transmit(std::move(rec), rkv::kClientGet, req.encode(),
           groups_[group].leader_hint, groups_[group].consensus,
           /*client_visible=*/false);
}

void OpenLoopGen::send_copy_put(std::uint32_t key_id,
                                std::vector<std::uint8_t> value) {
  const std::string key = key_name(key_id);
  const std::uint32_t shard = shard::shard_of_key(key, table_.num_shards);
  const std::uint32_t group = next_table_.group_of(shard);  // NEW owner
  rkv::ClientReq req;
  req.op = rkv::Op::kPut;
  req.key = key;
  req.value = std::move(value);  // VERBATIM: embedded write_seq survives
  OpRec rec;
  rec.kind = Kind::kCopyPut;
  rec.key_id = key_id;
  rec.shard = shard;
  rec.group = group;
  transmit(std::move(rec), rkv::kClientPut, req.encode(),
           groups_[group].leader_hint, groups_[group].consensus,
           /*client_visible=*/false);
}

void OpenLoopGen::begin_revoke() {
  rphase_ = RebalPhase::kRevoke;
  pending_cfg_ = 0;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    const auto old_owned = table_.shards_of(g);
    bool loses = false;
    for (const auto s : old_owned) {
      if (next_table_.group_of(s) != g) {
        loses = true;
        break;
      }
    }
    if (!loses) continue;
    send_cfg(g, next_table_.shards_of(g));
    ++pending_cfg_;
  }
  if (pending_cfg_ == 0) finish_rebalance();
}

void OpenLoopGen::finish_rebalance() {
  table_ = next_table_;
  moved_.clear();
  rphase_ = RebalPhase::kIdle;
  ++rebalances_done_;
  std::deque<QueuedOp> replay;
  replay.swap(queued_);
  for (const auto& q : replay) {
    if (q.is_put && q.owns_write_slot) {
      send_put(q.key_id);
    } else if (q.is_put) {
      issue_put(q.key_id);
    } else {
      issue_get(q.key_id, /*readback=*/false);
    }
  }
  if (on_rebalance_done_) on_rebalance_done_();
}

std::size_t OpenLoopGen::issue_readback(std::size_t max_keys) {
  std::size_t issued = 0;
  for (std::uint32_t k = 0; k < keys_.size() && issued < max_keys; ++k) {
    if (keys_[k].floor_seq == 0) continue;
    issue_get(k, /*readback=*/true);
    ++issued;
  }
  return issued;
}

}  // namespace ipipe::workloads
