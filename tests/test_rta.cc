#include <gtest/gtest.h>

#include "apps/rta/analytics.h"
#include "apps/rta/regex.h"

namespace ipipe::rta {
namespace {

TEST(Regex, Literals) {
  Regex re("abc");
  EXPECT_TRUE(re.match("abc"));
  EXPECT_FALSE(re.match("ab"));
  EXPECT_FALSE(re.match("abcd"));
  EXPECT_TRUE(re.search("xxabcxx"));
  EXPECT_FALSE(re.search("axbxc"));
}

TEST(Regex, Alternation) {
  Regex re("cat|dog|bird");
  EXPECT_TRUE(re.match("cat"));
  EXPECT_TRUE(re.match("dog"));
  EXPECT_TRUE(re.match("bird"));
  EXPECT_FALSE(re.match("cow"));
}

TEST(Regex, StarPlusQuestion) {
  EXPECT_TRUE(Regex("ab*c").match("ac"));
  EXPECT_TRUE(Regex("ab*c").match("abbbbc"));
  EXPECT_FALSE(Regex("ab+c").match("ac"));
  EXPECT_TRUE(Regex("ab+c").match("abc"));
  EXPECT_TRUE(Regex("ab?c").match("ac"));
  EXPECT_TRUE(Regex("ab?c").match("abc"));
  EXPECT_FALSE(Regex("ab?c").match("abbc"));
}

TEST(Regex, DotAndClasses) {
  EXPECT_TRUE(Regex("a.c").match("axc"));
  EXPECT_FALSE(Regex("a.c").match("ac"));
  EXPECT_TRUE(Regex("[a-z]+").match("hello"));
  EXPECT_FALSE(Regex("[a-z]+").match("Hello"));
  EXPECT_TRUE(Regex("[^0-9]+").match("abc!"));
  EXPECT_FALSE(Regex("[^0-9]+").match("ab1"));
  EXPECT_TRUE(Regex("\\d+").match("12345"));
  EXPECT_TRUE(Regex("\\w+").match("word_1"));
}

TEST(Regex, Grouping) {
  Regex re("(ab)+c");
  EXPECT_TRUE(re.match("abc"));
  EXPECT_TRUE(re.match("ababc"));
  EXPECT_FALSE(re.match("aabc"));
  Regex re2("(a|b)*c");
  EXPECT_TRUE(re2.match("c"));
  EXPECT_TRUE(re2.match("abbac"));
}

TEST(Regex, PaperStylePatterns) {
  Regex ing("[a-z]*ing");
  EXPECT_TRUE(ing.search("networking"));
  EXPECT_TRUE(ing.search("running fast"));
  EXPECT_FALSE(ing.search("runs"));
  Regex data("data[0-9]+");
  EXPECT_TRUE(data.search("data42"));
  EXPECT_FALSE(data.search("data"));
}

TEST(Regex, NoBacktrackingBlowup) {
  // Classic pathological case for backtracking engines: (a?)^n a^n.
  Regex re("a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?aaaaaaaaaaaaaaaaaaaa");
  EXPECT_TRUE(re.match("aaaaaaaaaaaaaaaaaaaa"));
  // Thompson simulation is linear: steps stay small.
  EXPECT_LT(re.last_steps(), 10'000u);
}

TEST(Regex, SyntaxErrorsThrow) {
  EXPECT_THROW(Regex("a("), std::invalid_argument);
  EXPECT_THROW(Regex("[abc"), std::invalid_argument);
  EXPECT_THROW(Regex("*a"), std::invalid_argument);
  EXPECT_THROW(Regex("a)"), std::invalid_argument);
}

TEST(Tuples, PackUnpackRoundTrip) {
  std::vector<Tuple> tuples;
  tuples.push_back({"hello", 3, 100});
  tuples.push_back({"world", 7, 200});
  const auto bytes = pack_tuples(tuples);
  const auto back = unpack_tuples(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].key, "hello");
  EXPECT_EQ(back[0].count, 3u);
  EXPECT_EQ(back[1].timestamp, 200u);
}

TEST(Filter, AdmitsOnlyMatchingTuples) {
  Filter filter({"[a-z]*ing", "data[0-9]+"});
  EXPECT_TRUE(filter.admit({"running", 1, 0}));
  EXPECT_TRUE(filter.admit({"data99", 1, 0}));
  EXPECT_FALSE(filter.admit({"plain", 1, 0}));
  EXPECT_EQ(filter.admitted(), 2u);
  EXPECT_EQ(filter.discarded(), 1u);
  EXPECT_GT(filter.last_steps(), 0u);
}

TEST(SlidingCounter, WindowExpiry) {
  SlidingCounter counter(msec(10), msec(1));
  counter.add({"k", 5, msec(1)});
  counter.add({"k", 3, msec(2)});
  EXPECT_EQ(counter.count("k"), 8u);
  // Advance beyond the window: old slots expire.
  counter.advance(msec(20));
  EXPECT_EQ(counter.count("k"), 0u);
  EXPECT_EQ(counter.keys(), 0u);
}

TEST(SlidingCounter, PartialExpiry) {
  SlidingCounter counter(msec(10), msec(1));
  counter.add({"k", 5, msec(0)});
  counter.add({"k", 3, msec(8)});
  counter.advance(msec(11));  // first slot (t=0) expired, second alive
  EXPECT_EQ(counter.count("k"), 3u);
}

TEST(TopNRanker, KeepsHighestCounts) {
  TopNRanker ranker(3);
  ranker.update("a", 10);
  ranker.update("b", 50);
  ranker.update("c", 30);
  ranker.update("d", 40);
  ranker.update("e", 5);
  const auto top = ranker.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "b");
  EXPECT_EQ(top[1].key, "d");
  EXPECT_EQ(top[2].key, "c");
}

TEST(TopNRanker, UpdatesExistingKey) {
  TopNRanker ranker(2);
  ranker.update("a", 10);
  ranker.update("b", 20);
  ranker.update("a", 100);
  const auto top = ranker.top();
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 100u);
  EXPECT_EQ(ranker.size(), 2u);
}

TEST(Topology, NextHopRouting) {
  Topology topo;
  topo.set_next("filter", 0, 7);
  topo.set_next("counter", 0, 8);
  ASSERT_NE(topo.next("filter"), nullptr);
  EXPECT_EQ(topo.next("filter")->actor, 7u);
  EXPECT_EQ(topo.next("nonexistent"), nullptr);
}

}  // namespace
}  // namespace ipipe::rta
