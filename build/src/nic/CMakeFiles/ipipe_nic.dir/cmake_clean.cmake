file(REMOVE_RECURSE
  "CMakeFiles/ipipe_nic.dir/accelerator.cc.o"
  "CMakeFiles/ipipe_nic.dir/accelerator.cc.o.d"
  "CMakeFiles/ipipe_nic.dir/cache_model.cc.o"
  "CMakeFiles/ipipe_nic.dir/cache_model.cc.o.d"
  "CMakeFiles/ipipe_nic.dir/dma_engine.cc.o"
  "CMakeFiles/ipipe_nic.dir/dma_engine.cc.o.d"
  "CMakeFiles/ipipe_nic.dir/nic_config.cc.o"
  "CMakeFiles/ipipe_nic.dir/nic_config.cc.o.d"
  "CMakeFiles/ipipe_nic.dir/nic_model.cc.o"
  "CMakeFiles/ipipe_nic.dir/nic_model.cc.o.d"
  "libipipe_nic.a"
  "libipipe_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipipe_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
