file(REMOVE_RECURSE
  "libipipe_crypto.a"
)
