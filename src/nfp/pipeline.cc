#include "nfp/pipeline.h"

#include <algorithm>
#include <utility>

namespace ipipe::nfp {
namespace {

/// StageCtx running inside an actor handler: costs and transport resolve
/// against the actor's current placement through ActorEnv.
class ActorStageCtx final : public StageCtx {
 public:
  ActorStageCtx(ActorEnv& env, netsim::ActorId next) : env_(env), next_(next) {}

  [[nodiscard]] Ns now() const override { return env_.now(); }
  [[nodiscard]] Rng& rng() override { return env_.rng(); }
  void charge(Ns t) override { env_.charge(t); }
  void compute(double units) override { env_.compute(units); }
  void mem(std::uint64_t ws, std::uint64_t n) override { env_.mem(ws, n); }
  void accel(nic::AccelKind kind, std::uint32_t bytes,
             std::uint32_t batch) override {
    env_.accel(kind, bytes, batch);
  }
  [[nodiscard]] netsim::PacketPtr clone(const netsim::Packet& src) override {
    return env_.clone_packet(src);
  }

 protected:
  void do_emit(netsim::PacketPtr pkt) override {
    env_.forward(next_, std::move(pkt));
  }
  void do_drop(netsim::PacketPtr pkt) override {
    // A dropped primary leaves a hole in the per-source sequence; send a
    // tombstone down the chain so the egress reorder point can account
    // for the sequence number instead of stalling on it forever.  Bonus
    // copies occupy no sequence slot and just vanish.
    if (pkt->msg_type != kNfData) {
      pkt.reset();
      return;
    }
    pkt->msg_type = kNfTomb;
    pkt->payload.clear();
    pkt->frame_size = netsim::kMinFrameSize;
    env_.forward(next_, std::move(pkt));
  }

 private:
  ActorEnv& env_;
  netsim::ActorId next_;
};

}  // namespace

class StageActor final : public Actor {
 public:
  StageActor(std::unique_ptr<Stage> stage, netsim::ActorId next, bool head)
      : Actor("nfp." + stage->name()),
        stage_(std::move(stage)),
        next_(next),
        head_(head) {}

  void init(ActorEnv& env) override {
    if (stage_->tick_period() > 0) {
      env.schedule_self(stage_->tick_period(), kNfTick);
    }
  }

  void handle(ActorEnv& env, const netsim::Packet& req) override {
    ActorStageCtx ctx(env, next_);
    ctx.set_stats(&stage_->stats());
    switch (req.msg_type) {
      case kNfTick:
        stage_->tick(ctx);
        env.schedule_self(stage_->tick_period(), kNfTick);
        break;
      case kNfTomb:
        // Pass-through: tombstones carry no work, only a sequence slot.
        env.compute(4.0);
        env.forward(next_, env.clone_packet(req));
        break;
      case kNfData:
      case kNfBonus: {
        ++stage_->stats().in;
        // The runtime owns `req`; promote it to an owned packet so the
        // stage can hold or forward it.
        auto pkt = env.clone_packet(req);
        // The head stage stamps the per-source ingress sequence the
        // egress reorder point restores (request ids are client-encoded
        // and opaque; the pipeline numbers arrivals itself).
        if (head_ && pkt->msg_type == kNfData && pkt->pipe_seq == 0) {
          pkt->pipe_seq = ++ingress_seq_[(static_cast<std::uint64_t>(pkt->src)
                                          << 32) |
                                         pkt->src_actor];
        }
        stage_->process(ctx, std::move(pkt));
        break;
      }
      default:
        break;  // stray message: ignore
    }
  }

  [[nodiscard]] std::uint64_t region_bytes() const override { return 2 * MiB; }
  [[nodiscard]] Stage& stage() noexcept { return *stage_; }
  [[nodiscard]] const Stage& stage() const noexcept { return *stage_; }

 private:
  std::unique_ptr<Stage> stage_;
  netsim::ActorId next_;
  bool head_;
  std::map<std::uint64_t, std::uint64_t> ingress_seq_;  ///< per source key
};

class EgressActor final : public Actor {
 public:
  EgressActor() : Actor("nfp.egress") {}

  void handle(ActorEnv& env, const netsim::Packet& req) override {
    switch (req.msg_type) {
      case kNfBonus:
        ++stats_.bonus;
        env.compute(6.0);
        break;
      case kNfData:
      case kNfTomb: {
        env.compute(15.0);
        auto& src = sources_[key_of(req)];
        env.mem(src.pending.size() * 64 + 1024, 2);
        const std::uint64_t seq = req.pipe_seq;
        if (seq == 0) break;  // unsequenced stray: not part of a pipeline
        if (seq < src.next_expected) {
          // Duplicate or a release below the watermark: the order
          // invariant is broken (or an upstream retransmitted).
          ++stats_.order_violations;
          break;
        }
        if (req.msg_type == kNfData) {
          src.pending[seq] = env.clone_packet(req);
        } else {
          src.pending[seq] = nullptr;  // tombstone marker
        }
        flush(env, src);
        break;
      }
      default:
        break;
    }
  }

  [[nodiscard]] std::uint64_t region_bytes() const override { return 2 * MiB; }

  [[nodiscard]] EgressStats stats() const {
    EgressStats s = stats_;
    for (const auto& [k, src] : sources_) {
      (void)k;
      s.pending += src.pending.size();
    }
    return s;
  }

 private:
  static std::uint64_t key_of(const netsim::Packet& req) noexcept {
    return (static_cast<std::uint64_t>(req.src) << 32) | req.src_actor;
  }

  void flush(ActorEnv& env, EgressSource& src) {
    auto it = src.pending.begin();
    while (it != src.pending.end() && it->first == src.next_expected) {
      if (it->second != nullptr) {
        const netsim::Packet& pkt = *it->second;
        if (pkt.pipe_seq <= src.last_delivered) ++stats_.order_violations;
        src.last_delivered = pkt.pipe_seq;
        env.reply(pkt, kNfOut, pkt.payload, pkt.frame_size);
        ++stats_.delivered;
      } else {
        ++stats_.tombstones;
      }
      ++src.next_expected;
      it = src.pending.erase(it);
    }
  }

  std::map<std::uint64_t, EgressSource> sources_;
  EgressStats stats_;
};

PipelineRunner::PipelineRunner(Runtime& rt, const PipelineSpec& spec,
                               Options opts)
    : rt_(rt), spec_(spec), group_(rt.create_actor_group()) {
  // Register back to front so each stage knows its successor's id.
  auto egress = std::make_unique<EgressActor>();
  egress_ = egress.get();
  netsim::ActorId next =
      rt_.register_actor(std::move(egress), opts.initial, group_, opts.tenant);

  stages_.resize(spec_.stages.size(), nullptr);
  for (std::size_t i = spec_.stages.size(); i-- > 0;) {
    auto stage = make_stage(spec_.stages[i], opts.seed + i);
    auto actor =
        std::make_unique<StageActor>(std::move(stage), next, /*head=*/i == 0);
    stages_[i] = actor.get();
    next = rt_.register_actor(std::move(actor), opts.initial, group_, opts.tenant);
  }
  ingress_ = next;
}

std::vector<StageSnapshot> PipelineRunner::stage_snapshots() const {
  std::vector<StageSnapshot> out;
  out.reserve(stages_.size());
  for (const StageActor* sa : stages_) {
    out.push_back({sa->stage().name(), sa->stage().stats()});
  }
  return out;
}

EgressStats PipelineRunner::egress_stats() const { return egress_->stats(); }

}  // namespace ipipe::nfp
