// Figure 16: P99 tail latency vs offered network load for three NIC-side
// schedulers — standalone FCFS, standalone DRR, and the iPipe hybrid —
// under low-dispersion (exponential) and high-dispersion (bimodal-2)
// request cost distributions, on the 10GbE LiquidIOII CN2350 and the
// 25GbE Stingray PS225 (§5.4).
#include <cstdio>

#include "common/table.h"
#include "harness/sweep.h"
#include "harness/trace_opts.h"
#include "ipipe/runtime.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

/// Tracing (--trace-out=/--trace-txt=) runs one *dedicated* capture pass
/// before the table sweeps: the hybrid scheduler on the first bimodal
/// scenario at high load with a narrowed host channel ring, so demotions,
/// migrations and channel backpressure all land in a single trace file.
/// The table runs themselves stay untraced — the printed numbers are
/// identical with and without --trace-out.
bench::TraceOpts g_trace;

constexpr std::uint16_t kReq = 1;
constexpr std::uint16_t kRep = 2;

/// Actor whose handler cost follows the configured distribution.
class DistActor final : public Actor {
 public:
  using CostFn = std::function<Ns(Rng&)>;
  explicit DistActor(CostFn cost) : Actor("dist"), cost_(std::move(cost)) {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(cost_(env.rng()));
    env.reply(req, kRep, {});
  }

 private:
  CostFn cost_;
};

struct Scenario {
  const char* name;
  nic::NicConfig nic;
  double mean_us;  ///< distribution mean (paper: 32us / 27us exp)
  bool bimodal;
  double b1_us, b2_us;
};

/// Per-actor cost functions for a scenario.  Low dispersion: three
/// identical exponential actors.  High dispersion: the paper's workload
/// is a packet-trace mix of the three applications, so the actors are
/// heterogeneous — a lightweight fast-path actor plus two heavyweight
/// bimodal ones (this is exactly the regime the hybrid targets: light
/// actors stay on FCFS cores, high-dispersion ones move to DRR cores).
std::vector<DistActor::CostFn> make_actors(const Scenario& sc, double& mix_mean) {
  std::vector<DistActor::CostFn> fns;
  if (!sc.bimodal) {
    const double mean = sc.mean_us;
    for (int i = 0; i < 3; ++i) {
      fns.push_back([mean](Rng& rng) { return usec(rng.exponential(mean)); });
    }
    mix_mean = mean;
    return fns;
  }
  const double light = sc.b1_us / 5.0;
  const double b1 = sc.b1_us;
  const double b2 = sc.b2_us;
  fns.push_back([light](Rng& rng) { return usec(rng.exponential(light)); });
  fns.push_back([b1, b2](Rng& rng) {
    return usec(rng.bernoulli(0.5) ? b1 : b2);
  });
  fns.push_back([b1, b2](Rng& rng) {
    return usec(rng.bernoulli(0.5) ? b1 : b2);
  });
  mix_mean = (light + (b1 + b2) / 2.0 * 2.0) / 3.0;
  return fns;
}

const char* policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFcfsOnly:
      return "FCFS";
    case SchedPolicy::kDrrOnly:
      return "DRR";
    default:
      return "hybrid";
  }
}

double p99_at_load(const Scenario& sc, SchedPolicy policy, double load,
                   bool capture = false, bench::PointPerf* perf = nullptr) {
  testbed::Cluster cluster;
  testbed::ServerSpec spec;
  spec.nic = sc.nic;
  spec.ipipe.policy = policy;
  if (capture) {
    g_trace.apply(spec.ipipe);
    // Narrow the host channel ring so the reliability/backpressure path
    // genuinely exercises during the capture (the default 1MB ring never
    // fills at these message rates).
    spec.ipipe.channel_bytes = 8 * 1024;
  }
  // The FCFS/DRR baselines are pure NIC-side schedulers; the iPipe hybrid
  // is the full runtime — including shedding load to the host when the
  // NIC cannot keep up (§3.2.2: "migrates actors between SmartNIC and
  // host processors when necessary").
  spec.ipipe.enable_migration = policy == SchedPolicy::kHybrid;
  spec.ipipe.migration_cooldown = msec(4);  // both heavy actors can shed
  // Tail threshold (§3.2.3): the service level the NIC must preserve.
  // It sits above the workload's intrinsic tail — only *queueing*
  // inflation beyond it should trigger downgrades.
  spec.ipipe.tail_thresh =
      sc.bimodal ? usec(sc.b2_us * 1.3) : usec(sc.mean_us * 12.0);
  spec.ipipe.mean_thresh =
      sc.bimodal ? usec((sc.b1_us + sc.b2_us) / 2.0 * 1.6)
                 : usec(sc.mean_us * 2.2);
  auto& server = cluster.add_server(spec);

  // Three actors share the NIC (multiple apps coexist, §5.4 workload is a
  // trace mix); each receives a slice of the Poisson stream.
  double mix_mean_us = 0.0;
  auto fns = make_actors(sc, mix_mean_us);
  std::vector<ActorId> actors;
  for (auto& fn : fns) {
    actors.push_back(server.runtime().register_actor(
        std::make_unique<DistActor>(std::move(fn))));
  }

  // Offered load: fraction of the system's aggregate capacity, including
  // the per-packet forwarding tax.  The DRR baseline reserves one core as
  // dispatcher/manager, so its capacity is normalized to the remaining
  // handler cores (load = fraction of each system's own max throughput).
  const double fwd_us =
      static_cast<double>(sc.nic.forwarding.cost(512) +
                          sc.nic.sw_shuffle_cost) / 1000.0;
  const double handler_cores = policy == SchedPolicy::kDrrOnly
                                   ? static_cast<double>(sc.nic.cores - 1)
                                   : static_cast<double>(sc.nic.cores);
  const double capacity_rps = handler_cores * 1e6 / (mix_mean_us + fwd_us);
  const double rate = capacity_rps * load;

  auto& client = cluster.add_client(
      sc.nic.link_gbps,
      [&, actors](std::uint64_t seq, Rng&, netsim::PacketPool& pool) {
        auto pkt = pool.make();
        pkt->dst = 0;
        pkt->dst_actor = actors[seq % actors.size()];
        pkt->msg_type = kReq;
        pkt->frame_size = 512;
        return pkt;
      });
  const Ns duration = msec(60);
  client.set_warmup(msec(15));
  client.start_open_loop(rate, duration, /*poisson=*/true);
  cluster.run_until(duration + msec(20));
  if (capture) {
    bench::write_cluster_trace(g_trace, cluster,
                               std::string("fig16/") + sc.name);
  }
  if (perf != nullptr) bench::fill_perf(*perf, cluster);
  return to_us(client.latencies().p99());
}

constexpr double kLoads[] = {0.1, 0.3, 0.5, 0.7, 0.8, 0.9};
constexpr SchedPolicy kPolicies[] = {SchedPolicy::kFcfsOnly,
                                     SchedPolicy::kDrrOnly,
                                     SchedPolicy::kHybrid};

}  // namespace

int main(int argc, char** argv) {
  g_trace = bench::parse_trace_opts(argc, argv);
  const bench::SweepOpts sweep_opts = bench::parse_sweep_opts(argc, argv);
  const Scenario scenarios[] = {
      {"(a) low dispersion (exp, mean 32us), 10GbE LiquidIOII CN2350",
       nic::liquidio_cn2350(), 32.0, false, 0, 0},
      {"(b) high dispersion (bimodal 35/60us), 10GbE LiquidIOII CN2350",
       nic::liquidio_cn2350(), 0, true, 35.0, 60.0},
      {"(c) low dispersion (exp, mean 27us), 25GbE Stingray PS225",
       nic::stingray_ps225(), 27.0, false, 0, 0},
      {"(d) high dispersion (bimodal 25/55us), 25GbE Stingray PS225",
       nic::stingray_ps225(), 0, true, 25.0, 55.0},
  };
  if (g_trace.enabled()) {
    (void)p99_at_load(scenarios[1], SchedPolicy::kHybrid, 0.95,
                      /*capture=*/true);
  }

  // Every (scenario, load, policy) point is an independent simulation:
  // compute them all through the sweep runner (parallel under --jobs=N),
  // then print in the fixed sequential order.
  struct Point {
    const Scenario* sc;
    std::size_t sc_idx;
    double load;
    SchedPolicy policy;
  };
  std::vector<Point> points;
  for (std::size_t si = 0; si < std::size(scenarios); ++si) {
    for (const double load : kLoads) {
      for (const SchedPolicy policy : kPolicies) {
        points.push_back({&scenarios[si], si, load, policy});
      }
    }
  }
  bench::SweepRunner runner(sweep_opts);
  const auto p99s = runner.map(
      points.size(), [&](std::size_t i, bench::PointPerf& perf) {
        const Point& pt = points[i];
        perf.label = strf("sc%zu %s load=%.1f", pt.sc_idx,
                          policy_name(pt.policy), pt.load);
        return p99_at_load(*pt.sc, pt.policy, pt.load, /*capture=*/false,
                           &perf);
      });

  std::size_t k = 0;
  for (const auto& sc : scenarios) {
    std::printf("\nFigure 16: %s\n", sc.name);
    TablePrinter table({"load", "FCFS", "DRR", "iPipe-sched"});
    for (const double load : kLoads) {
      table.add_row({strf("%.1f", load), strf("%.1f", p99s[k]),
                     strf("%.1f", p99s[k + 1]), strf("%.1f", p99s[k + 2])});
      k += 3;
    }
    table.print();
  }
  runner.write_json("fig16_scheduler");
  std::printf(
      "\nPaper shape: low dispersion — hybrid ~= FCFS, beats DRR; high "
      "dispersion — hybrid beats FCFS by up to ~68%% at 0.9 load and edges "
      "out DRR (~11-13%%).\n");
  return 0;
}
