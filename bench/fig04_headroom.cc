// Figure 4: achieved bandwidth as a synthetic per-packet processing
// latency is added to every frame, using all NIC cores — the "computing
// headroom" of the 10GbE LiquidIOII CN2350 and the 25GbE Stingray PS225
// at 256B and 1024B frames.
#include <cstdio>

#include "common/table.h"
#include "harness/echo_bench.h"
#include "nic/nic_config.h"

using namespace ipipe;

int main() {
  const auto liquidio = nic::liquidio_cn2350();
  const auto stingray = nic::stingray_ps225();
  const double extra_us[] = {0, 0.125, 0.25, 0.5, 1, 2, 4, 8, 16};

  std::printf(
      "\nFigure 4: bandwidth (Gbps) vs per-packet processing latency, all "
      "cores active\n");
  TablePrinter table({"extra(us)", "256B-10GbE", "1024B-10GbE", "256B-25GbE",
                      "1024B-25GbE"});
  struct Cell {
    const nic::NicConfig* cfg;
    std::uint32_t frame;
  };
  const Cell cells[] = {{&liquidio, 256},
                        {&liquidio, 1024},
                        {&stingray, 256},
                        {&stingray, 1024}};
  // Track the max tolerated latency (last extra that still hits ~line
  // rate) per column.
  double tolerated[4] = {0, 0, 0, 0};
  for (const double us : extra_us) {
    std::vector<std::string> row = {strf("%.3f", us)};
    for (int c = 0; c < 4; ++c) {
      const auto result = bench::run_echo(*cells[c].cfg, cells[c].frame,
                                          cells[c].cfg->cores, usec(us));
      row.push_back(strf("%.2f", result.goodput_gbps));
      const double line =
          goodput_gbps(line_rate_pps(cells[c].frame, cells[c].cfg->link_gbps),
                       cells[c].frame);
      if (result.goodput_gbps >= 0.97 * line) tolerated[c] = us;
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "Max tolerated per-packet latency (us): 256B-10GbE=%.3f "
      "1024B-10GbE=%.3f 256B-25GbE=%.3f 1024B-25GbE=%.3f\n",
      tolerated[0], tolerated[1], tolerated[2], tolerated[3]);
  std::printf(
      "Paper reports 2.5/9.8us (10GbE) and 0.7/2.6us (25GbE); see "
      "EXPERIMENTS.md for the Fig.2-vs-Fig.4 calibration tension.\n");
  return 0;
}
