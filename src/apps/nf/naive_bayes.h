// Naive-Bayes flow classifier — the "flow classifier" workload of
// Table 3 (heaviest CPU entry: 71µs, MPKI 15.2).  Real multinomial NB
// over per-flow feature vectors with log-likelihood scoring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ipipe::nf {

class NaiveBayes {
 public:
  NaiveBayes(std::size_t num_classes, std::size_t num_features);

  /// Add one training observation: feature counts for a flow of class c.
  void train(std::size_t cls, std::span<const std::uint32_t> features);

  struct Result {
    std::size_t cls = 0;
    double log_likelihood = 0.0;
    std::size_t cells_touched = 0;  ///< for cost accounting
  };
  /// Classify a feature vector (argmax of class log-posteriors).
  [[nodiscard]] Result classify(std::span<const std::uint32_t> features) const;

  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return features_; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return counts_.size() * sizeof(double);
  }

 private:
  std::size_t classes_;
  std::size_t features_;
  std::vector<double> counts_;       // classes x features
  std::vector<double> class_total_;  // per-class feature mass
  std::vector<double> class_prior_;  // per-class observation count
  double observations_ = 0.0;
};

}  // namespace ipipe::nf
