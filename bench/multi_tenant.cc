// Multi-tenancy & QoS: many tenants packed on one SmartNIC, a victim's
// tail latency measured while a neighbor misbehaves.
//
// Points:
//   baseline        — victim + packed background tenants, no aggressor
//   flood qos=off   — tenancy layer disabled; an ingress flood shares the
//                     TM FIFO and the FCFS cores with everyone (this is
//                     the unbounded case the isolation work removes)
//   flood qos=on    — same flood, but leased: ingress policer + weighted
//                     RX class + throttle ladder contain it
//   dmo-hog qos=on  — aggressor allocates DMO far past its quota group
//   mbox-spam qos=on— aggressor spams the PF<->VF control mailbox
//
// The bench *asserts* the isolation contract and exits nonzero when it
// is violated: every qos=on victim p99 must stay within 25% of the
// undisturbed baseline, and each aggression must be attributed in the
// aggressor's own ledger (policer/queue drops, quota denials, mailbox
// drops) while the victim's ledger stays clean.
//
// Flags: --jobs=N parallelizes the points; --bench-json=<path> emits the
// perf baseline (committed as BENCH_mt.json, uploaded by CI mt-smoke).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/sweep.h"
#include "ipipe/runtime.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

constexpr std::uint16_t kEchoReq = 1;
constexpr std::uint16_t kEchoRep = 2;

class ServiceActor final : public Actor {
 public:
  ServiceActor(std::string name, Ns cost) : Actor(std::move(name)), cost_(cost) {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(cost_);
    env.reply(req, kEchoRep, {});
  }

 private:
  Ns cost_;
};

/// Aggressor for the dmo-hog point: every request leaks a DMO chunk.
class DmoHogActor final : public Actor {
 public:
  DmoHogActor() : Actor("dmo-hog") {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(usec(1));
    (void)env.dmo_alloc(64 * KiB);  // never freed; quota must bound it
    env.reply(req, kEchoRep, {});
  }
};

workloads::ClientGen::MakeReq to_actor(ActorId actor, std::uint32_t frame) {
  workloads::EchoWorkloadParams p;
  p.server = 0;
  p.frame_size = frame;
  p.actor = actor;
  p.msg_type = kEchoReq;
  return workloads::echo_workload(p);
}

enum class Aggression { kNone, kFlood, kDmoHog, kMboxSpam };

struct PointCfg {
  const char* label;
  Aggression aggression;
  bool qos;  ///< tenancy layer on?
};

constexpr PointCfg kPoints[] = {
    {"baseline", Aggression::kNone, true},
    {"flood qos=off", Aggression::kFlood, false},
    {"flood qos=on", Aggression::kFlood, true},
    {"dmo-hog qos=on", Aggression::kDmoHog, true},
    {"mbox-spam qos=on", Aggression::kMboxSpam, true},
};

struct MtPoint {
  std::string label;
  double victim_p99_us = 0.0;
  double victim_mean_us = 0.0;
  std::uint64_t victim_completed = 0;
  std::uint64_t victim_drops = 0;      ///< victim-ledger ingress drops
  std::uint64_t aggro_drops = 0;       ///< policer+queue+throttle+filter
  std::uint64_t aggro_dmo_denied = 0;
  std::uint64_t aggro_mbox_drops = 0;
  std::uint64_t aggro_throttles = 0;
};

constexpr std::size_t kPackedTenants = 4;  ///< background VFs on the card
constexpr Ns kMeasureEnd = msec(30);

MtPoint run_point(const PointCfg& cfg, bench::PointPerf& perf) {
  testbed::Cluster cluster;
  auto& server = cluster.add_server(testbed::ServerSpec{});
  Runtime& rt = server.runtime();

  // Victim VF: generous lease, weight 2 of the card.
  TenantId victim = kNoTenant;
  if (cfg.qos) {
    TenantConfig vc;
    vc.name = "victim";
    vc.drr_weight = 2.0;
    victim = rt.create_tenant(vc);
  }
  const ActorId victim_id =
      rt.register_actor(std::make_unique<ServiceActor>("victim-svc", usec(2)),
                        ActorLoc::kNic, kNoGroup, victim);

  // Background VFs: the card is genuinely multi-tenant, each neighbor
  // with its own class, lease and light load.
  std::vector<ActorId> packed;
  for (std::size_t i = 0; i < kPackedTenants; ++i) {
    TenantId tid = kNoTenant;
    if (cfg.qos) {
      TenantConfig tc;
      tc.name = "packed-" + std::to_string(i);
      tc.ingress_rate_bps = 500e6;
      tid = rt.create_tenant(tc);
    }
    packed.push_back(rt.register_actor(
        std::make_unique<ServiceActor>("packed-" + std::to_string(i), usec(2)),
        ActorLoc::kNic, kNoGroup, tid));
  }

  // Aggressor VF: a 100 Mbps lease it is about to blow through.
  TenantId aggro = kNoTenant;
  if (cfg.qos) {
    TenantConfig ac;
    ac.name = "aggressor";
    ac.ingress_rate_bps = 100e6;
    ac.rx_queue_cap = 64;
    ac.dmo_cap_bytes = 256 * KiB;
    ac.mailbox_cap = 32;
    ac.throttle_threshold = 500;
    ac.throttle_window = msec(1);
    aggro = rt.create_tenant(ac);
  }
  std::unique_ptr<Actor> aggro_actor;
  if (cfg.aggression == Aggression::kDmoHog) {
    aggro_actor = std::make_unique<DmoHogActor>();
  } else {
    aggro_actor = std::make_unique<ServiceActor>("aggro-svc", usec(20));
  }
  const ActorId aggro_id = rt.register_actor(std::move(aggro_actor),
                                             ActorLoc::kNic, kNoGroup, aggro);

  // Victim load: closed loop, measured past warm-up.
  auto& victim_client = cluster.add_client(10.0, to_actor(victim_id, 256), 1);
  victim_client.set_warmup(msec(5));
  victim_client.start_closed_loop(2, kMeasureEnd);

  // Background load: light open loops on every packed tenant.
  for (std::size_t i = 0; i < packed.size(); ++i) {
    auto& c = cluster.add_client(10.0, to_actor(packed[i], 512),
                                 100 + static_cast<std::uint64_t>(i));
    c.start_open_loop(10e3, kMeasureEnd, /*poisson=*/true);
  }

  // The aggression.
  switch (cfg.aggression) {
    case Aggression::kNone:
      break;
    case Aggression::kFlood: {
      // ~4.8 Gbps of 1000B frames at 20us/req of service demand: enough
      // to saturate every NIC core when nothing contains it.
      auto& flood = cluster.add_client(10.0, to_actor(aggro_id, 1000), 2);
      flood.start_open_loop(600e3, kMeasureEnd, /*poisson=*/false);
      break;
    }
    case Aggression::kDmoHog: {
      auto& hog = cluster.add_client(10.0, to_actor(aggro_id, 512), 2);
      hog.start_open_loop(50e3, kMeasureEnd, /*poisson=*/false);
      break;
    }
    case Aggression::kMboxSpam: {
      for (int i = 0; i < 100'000; ++i) {
        (void)rt.vf_mailbox_post(aggro, {VfMboxOp::kQueryStats, 0.0});
      }
      break;
    }
  }

  cluster.run_until(kMeasureEnd + msec(5));
  bench::fill_perf(perf, cluster);

  MtPoint out;
  out.label = cfg.label;
  out.victim_p99_us = to_us(victim_client.latencies().p99());
  out.victim_mean_us = victim_client.latencies().mean_ns() / 1000.0;
  out.victim_completed = victim_client.completed();
  if (cfg.qos) {
    const TenantState* v = rt.tenant(victim);
    const TenantState* a = rt.tenant(aggro);
    out.victim_drops = v->stats.policer_drops + v->stats.queue_drops +
                       v->stats.filter_drops + v->stats.throttle_drops;
    out.aggro_drops = a->stats.policer_drops + a->stats.queue_drops +
                      a->stats.filter_drops + a->stats.throttle_drops;
    out.aggro_dmo_denied = a->stats.dmo_denied;
    out.aggro_mbox_drops = a->stats.mbox_drops;
    out.aggro_throttles = a->stats.throttles;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepRunner runner(bench::parse_sweep_opts(argc, argv));
  constexpr std::size_t kN = sizeof(kPoints) / sizeof(kPoints[0]);

  std::printf(
      "multi-tenant QoS: %zu VFs packed on one cn2350, victim closed-loop "
      "2-deep, aggressor per point\n",
      kPackedTenants + 2);

  const auto results =
      runner.map(kN, [&](std::size_t i, bench::PointPerf& perf) {
        perf.label = kPoints[i].label;
        return run_point(kPoints[i], perf);
      });

  TablePrinter table({"point", "victim p99(us)", "mean(us)", "completed",
                      "victim-drops", "aggro-drops", "dmo-denied",
                      "mbox-drops", "throttles"});
  for (const auto& r : results) {
    table.add_row(
        {r.label, strf("%.2f", r.victim_p99_us), strf("%.2f", r.victim_mean_us),
         strf("%llu", static_cast<unsigned long long>(r.victim_completed)),
         strf("%llu", static_cast<unsigned long long>(r.victim_drops)),
         strf("%llu", static_cast<unsigned long long>(r.aggro_drops)),
         strf("%llu", static_cast<unsigned long long>(r.aggro_dmo_denied)),
         strf("%llu", static_cast<unsigned long long>(r.aggro_mbox_drops)),
         strf("%llu", static_cast<unsigned long long>(r.aggro_throttles))});
  }
  table.print();
  runner.write_json("multi_tenant");

  // ---- isolation contract (nonzero exit on violation) -------------------
  const MtPoint& base = results[0];
  int failures = 0;
  const double bound = base.victim_p99_us * 1.25;
  for (std::size_t i = 2; i < kN; ++i) {  // every qos=on aggression
    if (results[i].victim_p99_us > bound) {
      std::fprintf(stderr,
                   "FAIL: %s victim p99 %.2fus exceeds 1.25x baseline "
                   "(%.2fus)\n",
                   results[i].label.c_str(), results[i].victim_p99_us, bound);
      ++failures;
    }
    if (results[i].victim_drops != 0) {
      std::fprintf(stderr, "FAIL: %s victim ledger shows %llu drops\n",
                   results[i].label.c_str(),
                   static_cast<unsigned long long>(results[i].victim_drops));
      ++failures;
    }
  }
  if (results[2].aggro_drops == 0) {
    std::fprintf(stderr, "FAIL: flood qos=on attributed no aggressor drops\n");
    ++failures;
  }
  if (results[3].aggro_dmo_denied == 0) {
    std::fprintf(stderr, "FAIL: dmo-hog saw no quota denials\n");
    ++failures;
  }
  if (results[4].aggro_mbox_drops == 0) {
    std::fprintf(stderr, "FAIL: mbox-spam saw no mailbox drops\n");
    ++failures;
  }
  if (failures != 0) return 1;

  std::printf(
      "isolation: OK — qos=on victim p99 within 25%% of baseline "
      "(%.2fus); flood qos=off for contrast: %.2fus\n",
      base.victim_p99_us, results[1].victim_p99_us);
  return 0;
}
