# Empty dependencies file for ipipe_tests.
# This may be replaced when dependencies are built.
