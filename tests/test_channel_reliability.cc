// Reliability + backpressure layer of the host<->NIC message channel:
// ring-full sends park and retransmit (never drop), CRC-corrupt and
// desynced frames are redelivered, ordering survives backpressure, and
// an end-to-end fault-injection run loses zero messages.
#include <gtest/gtest.h>

#include <vector>

#include "ipipe/channel.h"
#include "ipipe/runtime.h"
#include "nic/dma_engine.h"
#include "sim/simulation.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"
#include "workloads/client.h"

namespace ipipe {
namespace {

using testbed::Cluster;
using testbed::ServerSpec;
using workloads::ClientGen;

constexpr std::uint16_t kEchoReq = 1;
constexpr std::uint16_t kEchoRep = 2;

// ---------------------------------------------------------- ring framing --

TEST(ChannelRingFraming, CorruptLenIsCountedNotFatal) {
  ChannelRing ring(4096);
  const std::vector<std::uint8_t> msg(64, 0xAA);
  ASSERT_TRUE(ring.push(msg));
  ASSERT_TRUE(ring.push(msg));
  // Trash the first frame's length field: the byte stream is desynced.
  ring.corrupt_byte(1, 0xFF);

  bool corrupt = false;
  std::size_t discarded = 0;
  const auto out = ring.pop(&corrupt, &discarded);
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(corrupt);
  EXPECT_EQ(discarded, 2u) << "desync discards every unread frame";
  EXPECT_EQ(ring.framing_errors(), 1u);
  EXPECT_TRUE(ring.empty()) << "recovery skips all unread bytes";
  // The ring keeps working after recovery.
  ring.ack();
  ASSERT_TRUE(ring.push(msg));
  EXPECT_TRUE(ring.pop().has_value());
}

TEST(ChannelRingFraming, OversizedLenRejectedWithoutAbort) {
  ChannelRing ring(256);
  const std::vector<std::uint8_t> msg(100, 0x11);
  ASSERT_TRUE(ring.push(msg));
  // Force len far beyond capacity (high byte of the u32).
  ring.corrupt_byte(3, 0x7F);
  bool corrupt = false;
  EXPECT_FALSE(ring.pop(&corrupt).has_value());
  EXPECT_TRUE(corrupt);
  EXPECT_EQ(ring.framing_errors(), 1u);
}

// --------------------------------------------------- channel reliability --

class ChannelReliabilityTest : public ::testing::Test {
 protected:
  ChannelReliabilityTest()
      : dma(sim, nic::DmaTiming{}), chan(sim, dma, 1024) {}

  static ChannelMsg make_msg(std::uint16_t tag) {
    ChannelMsg msg;
    msg.dst_actor = 1;
    msg.msg_type = tag;
    msg.payload.assign(52, static_cast<std::uint8_t>(tag));
    return msg;
  }

  /// Drive the event loop, draining host-side deliveries, until `n`
  /// messages arrived or the simulation goes quiet.
  std::vector<ChannelMsg> drain_host(std::size_t n) {
    std::vector<ChannelMsg> got;
    for (;;) {
      while (auto msg = chan.host_poll()) {
        got.push_back(*msg);
        if (got.size() == n) return got;
      }
      if (!sim.step()) break;  // event queue empty: nothing more can arrive
    }
    return got;
  }

  sim::Simulation sim;
  nic::DmaEngine dma;
  MessageChannel chan;
};

TEST_F(ChannelReliabilityTest, RingFullSendParksAndRetransmits) {
  // ~116B frames into a 1KB ring: far more sends than fit at once.
  constexpr std::size_t kCount = 64;
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto ticket = chan.send_or_queue_to_host(make_msg(
        static_cast<std::uint16_t>(i)));
    // Always accepted, never an error to handle at the call site.
    (void)ticket;
  }
  const auto& st = chan.to_host_stats();
  EXPECT_GT(st.queued, 0u) << "the ring cannot hold 64 frames at once";

  const auto got = drain_host(kCount);
  ASSERT_EQ(got.size(), kCount) << "no message may be lost";
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i].msg_type, i) << "order must be preserved";
  }
  EXPECT_GT(st.drops_avoided, 0u);
  EXPECT_GT(st.backpressure_events, 0u);
  EXPECT_GT(st.backpressure_ns, 0u);
  EXPECT_GT(st.pending_high_watermark, 0u);
  EXPECT_GT(st.queue_delay.count(), 0u);
  EXPECT_EQ(st.sent, kCount);
}

TEST_F(ChannelReliabilityTest, CrcCorruptFrameIsRedelivered) {
  const std::size_t frame_start = chan.to_host_ring().write_pos();
  ASSERT_EQ(chan.send_or_queue_to_host(make_msg(7)).outcome,
            SendOutcome::kSent);
  // Flip a payload byte inside the pushed frame (8B framing + 56B header
  // + payload): the CRC check at the consumer must catch it.
  chan.to_host_ring_mut().corrupt_byte(frame_start + 8 + 60, 0xFF);

  const auto got = drain_host(1);
  ASSERT_EQ(got.size(), 1u) << "corrupt frame must be redelivered, not lost";
  EXPECT_EQ(got[0].msg_type, 7u);
  const auto& st = chan.to_host_stats();
  EXPECT_EQ(st.corrupt_frames, 1u);
  EXPECT_EQ(st.retransmits, 1u);
  EXPECT_GE(st.drops_avoided, 1u);
}

TEST_F(ChannelReliabilityTest, FramingDesyncRedeliversAllLostFrames) {
  const std::size_t frame_start = chan.to_host_ring().write_pos();
  for (std::uint16_t i = 0; i < 3; ++i) {
    ASSERT_EQ(chan.send_or_queue_to_host(make_msg(i)).outcome,
              SendOutcome::kSent);
  }
  // Corrupt the first frame's len field: the whole unread window is lost.
  chan.to_host_ring_mut().corrupt_byte(frame_start + 1, 0xFF);

  const auto got = drain_host(3);
  ASSERT_EQ(got.size(), 3u);
  for (std::uint16_t i = 0; i < 3; ++i) EXPECT_EQ(got[i].msg_type, i);
  const auto& st = chan.to_host_stats();
  EXPECT_EQ(st.framing_resyncs, 1u);
  EXPECT_EQ(st.retransmits, 3u);
}

TEST_F(ChannelReliabilityTest, OrderingUnderBackpressureAndCorruption) {
  // Random fault injection + a ring that is constantly full: messages
  // park, retransmit and reorder — the receiver must still see a strict
  // FIFO sequence with nothing lost and nothing duplicated.
  chan.set_fault_injection(0.05, /*seed=*/1234);
  constexpr std::size_t kCount = 200;
  std::size_t sent = 0;
  std::vector<ChannelMsg> got;
  while (got.size() < kCount) {
    if (sent < kCount) {
      chan.send_or_queue_to_host(make_msg(static_cast<std::uint16_t>(sent)));
      ++sent;
    }
    while (auto msg = chan.host_poll()) got.push_back(*msg);
    if (sent == kCount && !sim.step()) break;
    if (sent < kCount) sim.step();
  }
  ASSERT_EQ(got.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[i].msg_type, i) << "FIFO violated at " << i;
  }
  const auto& st = chan.to_host_stats();
  EXPECT_GT(st.corrupt_frames, 0u) << "fault injection should have fired";
  EXPECT_GT(st.retransmits, 0u);
  EXPECT_EQ(st.duplicates_dropped, 0u);
}

TEST_F(ChannelReliabilityTest, BothDirectionsIndependent) {
  chan.send_or_queue_to_host(make_msg(1));
  chan.send_or_queue_to_nic(make_msg(2));
  sim.run();
  const auto h = chan.host_poll();
  const auto n = chan.nic_poll();
  ASSERT_TRUE(h.has_value());
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(h->msg_type, 1u);
  EXPECT_EQ(n->msg_type, 2u);
  EXPECT_EQ(chan.to_host_stats().sent, 1u);
  EXPECT_EQ(chan.to_nic_stats().sent, 1u);
}

// ------------------------------------------------- retry backoff jitter --

/// Park a burst of sends behind a deliberately tiny ring and drain it,
/// returning the virtual finish time — a fingerprint of the exact retry
/// schedule (backoff + jitter decisions).  Also asserts the reliability
/// invariants: nothing lost, strict FIFO.
Ns run_parked_burst(ChannelTuning tuning) {
  sim::Simulation sim;
  nic::DmaEngine dma(sim, nic::DmaTiming{});
  MessageChannel chan(sim, dma, 512, tuning);
  constexpr std::size_t kCount = 64;
  for (std::size_t i = 0; i < kCount; ++i) {
    ChannelMsg msg;
    msg.dst_actor = 1;
    msg.msg_type = static_cast<std::uint16_t>(i);
    msg.payload.assign(52, static_cast<std::uint8_t>(i));
    chan.send_or_queue_to_host(msg);
  }
  std::size_t got = 0;
  for (;;) {
    while (auto m = chan.host_poll()) {
      EXPECT_EQ(m->msg_type, got) << "FIFO violated";
      ++got;
    }
    if (got == kCount || !sim.step()) break;
  }
  EXPECT_EQ(got, kCount) << "parked sends must never be lost";
  EXPECT_GT(chan.to_host_stats().queued, 0u) << "burst must actually park";
  return sim.now();
}

TEST(ChannelRetryJitter, DeterministicInSeedAndSensitiveToIt) {
  ChannelTuning tuning;
  tuning.retry_jitter = 0.5;
  tuning.jitter_seed = 42;
  const Ns a = run_parked_burst(tuning);
  const Ns b = run_parked_burst(tuning);
  EXPECT_EQ(a, b) << "same seed must replay byte-identically";

  tuning.jitter_seed = 43;
  const Ns c = run_parked_burst(tuning);
  EXPECT_NE(a, c) << "a different seed must perturb the retry schedule";
}

TEST(ChannelRetryJitter, JitterSpreadsRetriesWithoutBreakingReliability) {
  ChannelTuning plain;
  plain.retry_jitter = 0.0;
  const Ns baseline = run_parked_burst(plain);
  // jitter=0 is itself deterministic (the legacy schedule).
  EXPECT_EQ(baseline, run_parked_burst(plain));

  ChannelTuning jittered;
  jittered.retry_jitter = 0.5;
  const Ns spread = run_parked_burst(jittered);
  // Jitter only ever *adds* delay to a retry, so the jittered schedule
  // runs pointwise no earlier than the legacy one — and not identical.
  EXPECT_NE(spread, baseline);
  EXPECT_GE(spread, baseline);
}

TEST(ChannelRetryJitter, CapBoundsRetryLatencyAfterConsumerStall) {
  // A stalled consumer lets the backoff double all the way up; the cap
  // decides how long the first post-stall retry can lag.  A tight cap
  // must drain the backlog sooner than a loose one.
  const auto run = [](Ns cap) {
    sim::Simulation sim;
    nic::DmaEngine dma(sim, nic::DmaTiming{});
    ChannelTuning tuning;
    tuning.retry_cap = cap;
    tuning.retry_jitter = 0.25;
    MessageChannel chan(sim, dma, 256, tuning);
    for (std::size_t i = 0; i < 24; ++i) {
      ChannelMsg msg;
      msg.dst_actor = 1;
      msg.msg_type = static_cast<std::uint16_t>(i);
      msg.payload.assign(52, 0xCD);
      chan.send_or_queue_to_nic(msg);
    }
    // Stall: nobody polls while retries back off toward the cap.
    while (sim.now() < usec(300) && sim.step()) {
    }
    std::size_t got = 0;
    for (;;) {
      while (chan.nic_poll()) ++got;
      if (got == 24 || !sim.step()) break;
    }
    EXPECT_EQ(got, 24u);
    return sim.now();
  };
  EXPECT_LT(run(usec(8)), run(usec(512)));
}

// ------------------------------------------------------------ end-to-end --

/// Echo actor with a fixed service time; optionally host-pinned so every
/// request crosses the NIC->host channel.
class EchoActor : public Actor {
 public:
  explicit EchoActor(bool pinned, Ns cost = usec(2))
      : Actor("echo"), pinned_(pinned), cost_(cost) {}

  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(cost_);
    ++handled_;
    env.reply(req, kEchoRep, {});
  }
  [[nodiscard]] bool host_pinned() const override { return pinned_; }

  std::uint64_t handled_ = 0;

 private:
  bool pinned_;
  Ns cost_;
};

ClientGen::MakeReq to_actor(netsim::NodeId node, ActorId actor,
                            std::uint32_t frame = 256) {
  workloads::EchoWorkloadParams p;
  p.server = node;
  p.frame_size = frame;
  p.actor = actor;
  p.msg_type = kEchoReq;
  return workloads::echo_workload(p);
}

// Acceptance: >=1% CRC corruption on a 4KB ring must lose zero messages
// end-to-end — every request eventually executes — with the recovery
// visible in the runtime's channel counters.
TEST(ChannelReliabilityE2E, FaultInjectionLosesNothing) {
  Cluster cluster;
  ServerSpec spec;
  spec.ipipe.channel_bytes = 4096;
  spec.ipipe.channel_fault_rate = 0.02;  // 2% of frames corrupted
  auto& server = cluster.add_server(spec);
  auto* actor = new EchoActor(/*pinned=*/true);
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  auto& client = cluster.add_client(10.0, to_actor(0, id));
  client.start_closed_loop(16, msec(30));
  // Generous drain window: backoff-delayed retransmits must all land.
  cluster.run_until(msec(60));

  EXPECT_GT(client.completed(), 1000u);
  EXPECT_EQ(client.completed(), client.sent())
      << "a request was lost despite the reliability layer";
  EXPECT_EQ(actor->handled_, client.sent());

  const auto& to_host = server.runtime().chan_to_host_stats();
  EXPECT_GT(to_host.corrupt_frames, 0u) << "fault injection never fired";
  EXPECT_GT(to_host.retransmits, 0u);
  EXPECT_GT(to_host.drops_avoided, 0u);
  EXPECT_GT(to_host.ring_high_watermark, 0u);
}

// Migration phase 4 forwards buffered requests over the channel; with a
// tiny ring under load the forwards hit ring-full and must park inside
// the channel instead of being dropped or stalling the migration.
TEST(ChannelReliabilityE2E, MigrationPhase4SurvivesFullRing) {
  Cluster cluster;
  ServerSpec spec;
  spec.ipipe.channel_bytes = 4096;
  spec.ipipe.enable_migration = false;  // only the manual migration below
  auto& server = cluster.add_server(spec);
  auto* actor = new EchoActor(/*pinned=*/false, usec(4));
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));

  auto& client = cluster.add_client(10.0, to_actor(0, id));
  client.start_closed_loop(32, msec(30));
  // Kick the migration mid-load so requests pile into the migration
  // buffer and phase 4 has real forwarding to do over the tiny ring.
  cluster.sim().schedule(msec(5), [&] {
    ASSERT_TRUE(server.runtime().start_migration(id, ActorLoc::kHost));
  });
  cluster.run_until(msec(60));

  const auto* control = server.runtime().control(id);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->mig, MigState::kStable) << "migration must complete";
  EXPECT_EQ(control->loc, ActorLoc::kHost);
  EXPECT_EQ(client.completed(), client.sent())
      << "phase-4 forwarding lost a request";
  EXPECT_GT(server.runtime().requests_on_host(), 0u);
}

// ------------------------------------------------- scheduler regressions --

// Retiring the last DRR core while DRR mailboxes still hold requests
// would strand them forever (FCFS cores never scan DRR mailboxes).
TEST(AutoscaleRegression, LastDrrCoreNotRetiredWithPendingWork) {
  Cluster cluster;
  ServerSpec spec;
  spec.ipipe.policy = SchedPolicy::kDrrOnly;
  auto& server = cluster.add_server(spec);
  auto* actor = new EchoActor(/*pinned=*/false);
  const ActorId id =
      server.runtime().register_actor(std::unique_ptr<Actor>(actor));
  auto& rt = server.runtime();
  ASSERT_EQ(rt.drr_cores(), 1u);

  // Park a request in the DRR mailbox by hand and try to retire.
  auto* control = rt.control(id);
  ASSERT_NE(control, nullptr);
  ASSERT_TRUE(control->is_drr);
  auto pkt = netsim::alloc_packet();
  pkt->dst_actor = id;
  pkt->msg_type = kEchoReq;
  control->mailbox.push_back(std::move(pkt));
  ASSERT_TRUE(rt.drr_work_pending());

  rt.retire_drr_core();
  EXPECT_EQ(rt.drr_cores(), 1u)
      << "must refuse to retire the last DRR core with pending mailboxes";

  // Once the mailbox drains, retiring is allowed again.
  control->mailbox.clear();
  EXPECT_FALSE(rt.drr_work_pending());
  rt.retire_drr_core();
  EXPECT_EQ(rt.drr_cores(), 0u);
}

// Forwarding-path stats must record the per-packet cost delta, not the
// cumulative slice time: forward-only traffic response estimates stay in
// the forwarding-cost ballpark even when a core handles a whole batch of
// packets within one slice.
TEST(SchedulerStatsRegression, ForwardOnlyResponseStaysBounded) {
  Cluster cluster;
  auto& server = cluster.add_server(ServerSpec{});
  workloads::EchoWorkloadParams p;
  p.server = 0;
  p.frame_size = 512;
  p.actor = netsim::kForwardOnly;
  p.msg_type = kEchoReq;
  // Open loop (forward-only traffic never generates replies, so a closed
  // loop would stall after one window): a dense burst forces multi-packet
  // core slices, which is where cumulative accounting inflated the stats.
  auto& client = cluster.add_client(10.0, workloads::echo_workload(p));
  client.start_open_loop(1e6, msec(2), /*poisson=*/false);
  cluster.run_until(msec(5));

  ASSERT_GT(server.runtime().fcfs_samples(), 100u);
  // Per-packet forwarding on the NIC costs a few microseconds; the old
  // cumulative-slice accounting summed every earlier packet in the batch
  // into each sample, inflating the mean by the batch length.
  EXPECT_LT(server.runtime().fcfs_stats().mean(),
            static_cast<double>(usec(20)));
}

}  // namespace
}  // namespace ipipe
