file(REMOVE_RECURSE
  "CMakeFiles/ipipe_netsim.dir/network.cc.o"
  "CMakeFiles/ipipe_netsim.dir/network.cc.o.d"
  "libipipe_netsim.a"
  "libipipe_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipipe_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
