// google-benchmark microbenchmarks of the simulator itself: event-queue
// throughput (schedule-heavy and cancel-heavy churn), event-capture cost
// around the inline-callable small-buffer boundary, packet-pool recycling,
// and end-to-end simulated-seconds-per-wallclock-second for a loaded
// node — documents the cost of running the reproduction.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ipipe/runtime.h"
#include "netsim/packet.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

namespace ipipe {
namespace {

// ---- Event queue -------------------------------------------------------

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(static_cast<Ns>(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueChurn);

// Timer-style workload: most scheduled events are cancelled before they
// fire (retransmit timers, deadline guards).  Exercises the tombstone /
// compaction path rather than the execute path.
void BM_EventQueueCancelChurn(benchmark::State& state) {
  constexpr int kBatch = 10'000;
  std::vector<sim::EventId> ids(kBatch);
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < kBatch; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.schedule(static_cast<Ns>(i % 97), [] {});
    }
    // Cancel 9 of every 10 events, scattered across timestamps.
    for (int i = 0; i < kBatch; ++i) {
      if (i % 10 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
    benchmark::DoNotOptimize(sim.cancelled());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventQueueCancelChurn);

// Schedule cost as a function of capture size: below the inline-callable
// small-buffer bound (48B) the event engine never touches the heap
// allocator; above it, every schedule pays an allocation ("spill").
template <std::size_t kCaptureBytes>
void BM_EventCaptureSize(benchmark::State& state) {
  struct Payload {
    unsigned char bytes[kCaptureBytes];
  };
  Payload payload{};
  std::memset(payload.bytes, 0x5a, sizeof(payload.bytes));
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(static_cast<Ns>(i % 97), [payload] {
        benchmark::DoNotOptimize(&payload);
      });
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
  state.SetLabel(kCaptureBytes <= 48 ? "inline" : "spilled");
}
BENCHMARK_TEMPLATE(BM_EventCaptureSize, 16);
BENCHMARK_TEMPLATE(BM_EventCaptureSize, 48);
BENCHMARK_TEMPLATE(BM_EventCaptureSize, 64);
BENCHMARK_TEMPLATE(BM_EventCaptureSize, 128);

// ---- Packet pool -------------------------------------------------------

// Steady-state packet alloc/free cycle through the freelist.  After the
// first window every make() is a recycle; the reported hit rate should
// approach 1.
void BM_PacketPoolRoundTrip(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  netsim::PacketPool pool;
  std::vector<netsim::PacketPtr> live;
  live.reserve(window);
  for (auto _ : state) {
    for (std::size_t i = 0; i < window; ++i) {
      auto p = pool.make();
      p->payload.assign(512, 0xab);
      live.push_back(std::move(p));
    }
    live.clear();  // recycles the whole window
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(window));
  state.counters["hit_rate"] = pool.hit_rate();
}
BENCHMARK(BM_PacketPoolRoundTrip)->Arg(8)->Arg(64)->Arg(1024);

// The same cycle against the plain heap — the cost pool recycling avoids.
void BM_PacketHeapRoundTrip(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  std::vector<netsim::PacketPtr> live;
  live.reserve(window);
  for (auto _ : state) {
    for (std::size_t i = 0; i < window; ++i) {
      auto p = netsim::alloc_packet();
      p->payload.assign(512, 0xab);
      live.push_back(std::move(p));
    }
    live.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(window));
}
BENCHMARK(BM_PacketHeapRoundTrip)->Arg(64);

// ---- Parallel engine ---------------------------------------------------

// Conservative windowed execution over a 16-domain mesh: every domain
// runs a local ticker and hands one event per tick to the next domain in
// the ring, 1.2us ahead (inside the 1us-lookahead safety bound).  The
// thread sweep documents how the windowed protocol scales; the executed
// event count is identical for every thread count by construction.
constexpr std::uint32_t kChurnDomains = 16;
constexpr Ns kChurnHorizon = usec(200);
constexpr Ns kChurnLookahead = usec(1);

struct ChurnTicker {
  sim::ParallelSimulation& ps;
  std::uint32_t d;
  void tick() {
    auto& s = ps.domain(d);
    if (s.now() >= kChurnHorizon) return;
    ps.post((d + 1) % kChurnDomains, s.now() + kChurnLookahead + 200, [] {});
    s.schedule(97, [this] { tick(); });
  }
};

void BM_MultiDomainChurn(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::ParallelSimulation psim;
    for (std::uint32_t d = 0; d < kChurnDomains; ++d) {
      psim.add_domain("churn" + std::to_string(d));
    }
    for (std::uint32_t s = 0; s < kChurnDomains; ++s) {
      for (std::uint32_t t = 0; t < kChurnDomains; ++t) {
        if (s != t) psim.set_lookahead(s, t, kChurnLookahead);
      }
    }
    psim.set_threads(static_cast<unsigned>(state.range(0)));
    std::vector<std::unique_ptr<ChurnTicker>> tickers;
    tickers.reserve(kChurnDomains);
    for (std::uint32_t d = 0; d < kChurnDomains; ++d) {
      tickers.push_back(std::make_unique<ChurnTicker>(ChurnTicker{psim, d}));
      ChurnTicker* t = tickers.back().get();
      psim.domain(d).schedule_at(0, [t] { t->tick(); });
    }
    psim.run(kChurnHorizon + usec(5));
    events += psim.executed();
    benchmark::DoNotOptimize(psim.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MultiDomainChurn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- End-to-end --------------------------------------------------------

void BM_EchoNodeSimulatedMillisecond(benchmark::State& state) {
  std::uint64_t completed = 0;
  for (auto _ : state) {
    testbed::Cluster cluster;
    auto& server = cluster.add_server(testbed::ServerSpec{});

    class Echo final : public Actor {
     public:
      Echo() : Actor("echo") {}
      void handle(ActorEnv& env, const netsim::Packet& req) override {
        env.charge(usec(2));
        env.reply(req, 2, {});
      }
    };
    const ActorId id =
        server.runtime().register_actor(std::make_unique<Echo>());
    workloads::EchoWorkloadParams wl;
    wl.server = 0;
    wl.actor = id;
    wl.msg_type = 1;
    wl.frame_size = 512;
    auto& client = cluster.add_client(10.0, workloads::echo_workload(wl));
    client.start_closed_loop(8, msec(1));
    cluster.run_until(msec(2));
    completed += client.completed();
    benchmark::DoNotOptimize(client.completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_EchoNodeSimulatedMillisecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ipipe

BENCHMARK_MAIN();
