#include "apps/nf/maglev.h"

#include <cassert>
#include <functional>
#include <limits>

namespace ipipe::nf {
namespace {

std::uint64_t hash_str(const std::string& s, std::uint64_t salt) {
  std::uint64_t h = 1469598103934665603ULL ^ salt;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

MaglevTable::MaglevTable(std::vector<std::string> backends,
                         std::size_t table_size)
    : backends_(std::move(backends)),
      alive_(backends_.size(), true),
      entries_(table_size, std::numeric_limits<std::size_t>::max()) {
  assert(!backends_.empty());
  populate();
}

void MaglevTable::populate() {
  const std::size_t m = entries_.size();
  const std::size_t n = backends_.size();
  std::fill(entries_.begin(), entries_.end(),
            std::numeric_limits<std::size_t>::max());

  // Per-backend permutation parameters (offset, skip), Maglev §3.4.
  std::vector<std::size_t> offset(n);
  std::vector<std::size_t> skip(n);
  std::vector<std::size_t> next(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offset[i] = hash_str(backends_[i], 0xA11CE) % m;
    skip[i] = hash_str(backends_[i], 0xB0B) % (m - 1) + 1;
  }

  std::size_t filled = 0;
  while (filled < m) {
    for (std::size_t i = 0; i < n && filled < m; ++i) {
      if (!alive_[i]) continue;
      // Find this backend's next preferred empty slot.
      std::size_t c = (offset[i] + next[i] * skip[i]) % m;
      while (entries_[c] != std::numeric_limits<std::size_t>::max()) {
        ++next[i];
        c = (offset[i] + next[i] * skip[i]) % m;
      }
      entries_[c] = i;
      ++next[i];
      ++filled;
    }
    // All backends dead would loop forever; guard.
    bool any_alive = false;
    for (std::size_t i = 0; i < n; ++i) any_alive = any_alive || alive_[i];
    assert(any_alive);
  }
}

double MaglevTable::remove_backend(std::size_t idx) {
  assert(idx < backends_.size());
  const std::vector<std::size_t> before = entries_;
  alive_[idx] = false;
  populate();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i] != before[i]) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(entries_.size());
}

std::vector<std::size_t> MaglevTable::load_distribution() const {
  std::vector<std::size_t> counts(backends_.size(), 0);
  for (const std::size_t e : entries_) {
    if (e < counts.size()) ++counts[e];
  }
  return counts;
}

}  // namespace ipipe::nf
