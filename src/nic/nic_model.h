// NicModel: the simulated Multicore SoC SmartNIC.
//
// The device owns the traffic manager, the core pool, the DMA/RDMA
// engines, the accelerator bank and the memory model.  What the cores
// *do* is pluggable firmware: the echo server of the characterization
// experiments, the iPipe NIC runtime, or a pass-through for dumb NICs.
//
// Core execution protocol: whenever a core is free the device calls
// `firmware->run_once(ctx, core)`.  The firmware performs at most one
// run-to-completion unit of work, charging simulated time through the
// NicExecContext; the core is then busy for the accumulated cost and any
// buffered transmissions / host deliveries happen at completion time.
// Returning false parks the core until `wake_core`/`wake_all`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"
#include "netsim/network.h"
#include "netsim/packet.h"
#include "nic/accelerator.h"
#include "nic/cache_model.h"
#include "nic/dma_engine.h"
#include "nic/nic_config.h"
#include "nic/traffic_manager.h"
#include "sim/parallel.h"
#include "sim/simulation.h"

namespace ipipe::nic {

class NicModel;

/// Per-work-item execution context: accumulates simulated cost and
/// buffers externally visible effects until the work item retires.
class NicExecContext {
 public:
  NicExecContext(NicModel& nic, unsigned core) : nic_(nic), core_(core) {}

  [[nodiscard]] Ns now() const noexcept;
  [[nodiscard]] unsigned core() const noexcept { return core_; }
  [[nodiscard]] NicModel& nic() noexcept { return nic_; }

  /// Charge raw simulated time / core cycles.
  void charge(Ns t) noexcept { consumed_ += t; }
  void charge_cycles(double cycles) noexcept;

  /// Charge `n` dependent random accesses within a working set.
  void mem(std::uint64_t working_set, std::uint64_t n) noexcept;
  /// Charge a sequential touch of `bytes` within a working set.
  void stream(std::uint64_t working_set, std::uint64_t bytes) noexcept;
  /// Charge a blocking accelerator batch.
  void accel(AccelKind kind, std::uint32_t bytes, std::uint32_t batch) noexcept;
  /// Charge the standard per-frame forwarding cost (RX+TX tax).
  void charge_forwarding(std::uint32_t frame_size) noexcept;
  /// Charge the NIC-side hardware-assisted send/recv primitive (Fig. 6).
  void charge_nstack(std::uint32_t frame_size) noexcept;
  /// Charge a blocking DMA read/write of `bytes` to/from host memory.
  void dma_read_blocking(std::uint32_t bytes) noexcept;
  void dma_write_blocking(std::uint32_t bytes) noexcept;

  /// Transmit a frame onto the wire when this work item retires.
  void tx(netsim::PacketPtr pkt) { tx_queue_.push_back(std::move(pkt)); }
  /// Deliver a frame to the host (DMA write + host RX ring) at retirement.
  void to_host(netsim::PacketPtr pkt) { host_queue_.push_back(std::move(pkt)); }
  /// Run an arbitrary action at retirement (after tx/host deliveries).
  /// InlineFn: move-only captures (e.g. a PacketPtr) ride inline.
  void defer(InlineFn fn) { deferred_.push_back(std::move(fn)); }

  [[nodiscard]] Ns consumed() const noexcept { return consumed_; }

 private:
  friend class NicModel;
  NicModel& nic_;
  unsigned core_;
  Ns consumed_ = 0;
  std::vector<netsim::PacketPtr> tx_queue_;
  std::vector<netsim::PacketPtr> host_queue_;
  std::vector<InlineFn> deferred_;
};

/// Pluggable NIC-core program.
class NicFirmware {
 public:
  virtual ~NicFirmware() = default;
  /// Perform at most one unit of work on `core`.  Return false if there
  /// is nothing to do (the core parks until woken).
  virtual bool run_once(NicExecContext& ctx, unsigned core) = 0;
  /// Called once when installed on a device.
  virtual void attached(NicModel& /*nic*/) {}
};

class NicModel : public netsim::Endpoint {
 public:
  NicModel(sim::Simulation& sim, NicConfig cfg, netsim::Network& net,
           netsim::NodeId node);

  NicModel(const NicModel&) = delete;
  NicModel& operator=(const NicModel&) = delete;

  // -- wiring ---------------------------------------------------------
  void set_firmware(NicFirmware* fw);
  /// Restrict the device to its first `n` cores (Fig. 2/3 sweeps).
  void set_active_cores(unsigned n) noexcept;
  /// Host RX ring sink: frames DMAed to the host land here.
  void set_host_rx(std::function<void(netsim::PacketPtr)> sink) {
    host_rx_ = std::move(sink);
  }
  /// Off-path steering predicate: true = give the frame to NIC cores,
  /// false = bypass to host (NIC-switch rules, Fig. 1-c).
  void set_steer_to_nic(std::function<bool(const netsim::Packet&)> pred) {
    steer_to_nic_ = std::move(pred);
  }

  // -- datapath -------------------------------------------------------
  void receive(netsim::PacketPtr pkt) override;  // from the wire
  /// Host hands a frame to the NIC for transmission (transmit path).
  void host_tx(netsim::PacketPtr pkt);
  /// Put a frame on the wire immediately (called at work-item retirement).
  void wire_tx(netsim::PacketPtr pkt);
  /// DMA a frame to the host RX ring (async; models PCIe write).
  void deliver_to_host(netsim::PacketPtr pkt);

  // -- core scheduling --------------------------------------------------
  void wake_core(unsigned core);
  void wake_all();
  /// Arrange for `wake_core(core)` at an absolute time (DRR timers etc).
  void wake_core_at(unsigned core, Ns when);

  // -- components -------------------------------------------------------
  [[nodiscard]] const NicConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] TrafficManager& tm() noexcept { return tm_; }
  [[nodiscard]] DmaEngine& dma() noexcept { return dma_; }
  [[nodiscard]] AcceleratorBank& accel() noexcept { return accel_; }
  [[nodiscard]] CacheModel& cache() noexcept { return cache_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] netsim::NodeId node() const noexcept { return node_; }
  [[nodiscard]] unsigned active_cores() const noexcept { return active_cores_; }

  // -- statistics -------------------------------------------------------
  [[nodiscard]] std::uint64_t rx_frames() const noexcept { return rx_frames_; }
  [[nodiscard]] std::uint64_t tx_frames() const noexcept { return tx_frames_; }
  [[nodiscard]] std::uint64_t to_host_frames() const noexcept {
    return to_host_frames_;
  }
  /// Cumulative busy time of `core` (for utilization measurements).
  [[nodiscard]] Ns core_busy_ns(unsigned core) const {
    return cores_[core].busy_total;
  }
  [[nodiscard]] Ns total_busy_ns() const noexcept;

  /// Engine domain this device executes in (parallel-cluster
  /// registration); kNoDomain on the single-queue engine.
  void set_engine_domain(sim::DomainId d) noexcept { engine_domain_ = d; }
  [[nodiscard]] sim::DomainId engine_domain() const noexcept {
    return engine_domain_;
  }

 private:
  struct CoreState {
    bool parked = true;      // no work; waiting for wake
    bool executing = false;  // currently inside a work item
    Ns busy_total = 0;
  };

  void run_core(unsigned core);
  void retire(unsigned core, std::unique_ptr<NicExecContext> ctx);
  void admit(netsim::PacketPtr pkt);

  sim::DomainId engine_domain_ = sim::kNoDomain;
  sim::Simulation& sim_;
  NicConfig cfg_;
  netsim::Network& net_;
  netsim::NodeId node_;

  TrafficManager tm_;
  DmaEngine dma_;
  AcceleratorBank accel_;
  CacheModel cache_;

  NicFirmware* firmware_ = nullptr;
  unsigned active_cores_;
  std::vector<CoreState> cores_;

  std::function<void(netsim::PacketPtr)> host_rx_;
  std::function<bool(const netsim::Packet&)> steer_to_nic_;

  Ns next_admit_ = 0;  // NIC-wide max_pps admission pacing
  std::uint64_t rx_frames_ = 0;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t to_host_frames_ = 0;
};

}  // namespace ipipe::nic
