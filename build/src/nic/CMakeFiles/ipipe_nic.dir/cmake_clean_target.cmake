file(REMOVE_RECURSE
  "libipipe_nic.a"
)
