#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace ipipe::sim {

namespace {
constexpr std::size_t kArity = 4;
/// Compaction only considers queues with at least this many tombstones, so
/// light churn never pays the sweep.
constexpr std::size_t kCompactMinDead = 64;
}  // namespace

std::uint32_t Simulation::acquire_slot() {
  if (slot_free_ != kNoIndex) {
    const std::uint32_t idx = slot_free_;
    slot_free_ = slot(idx).next;
    return idx;
  }
  if ((slot_count_ >> kSlotChunkShift) == slot_chunks_.size()) {
    slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
  }
  return slot_count_++;
}

void Simulation::free_slot(std::uint32_t idx) noexcept {
  Slot& s = slot(idx);
  s.fn.reset();
  // Generation bump invalidates every outstanding EventId for this slot
  // (a 32-bit generation wraps only after 4G reuses of one slot).
  ++s.gen;
  s.next = slot_free_;
  slot_free_ = idx;
}

std::uint32_t Simulation::acquire_bucket() {
  if (bucket_free_ != kNoIndex) {
    const std::uint32_t b = bucket_free_;
    bucket_free_ = buckets_[b].next_free;
    return b;
  }
  buckets_.emplace_back();
  return static_cast<std::uint32_t>(buckets_.size() - 1);
}

void Simulation::free_bucket(std::uint32_t bucket) noexcept {
  Bucket& b = buckets_[bucket];
  ++b.gen;  // invalidates the cache entry and any stale heap entry
  b.head = b.tail = kNoIndex;
  b.next_free = bucket_free_;
  bucket_free_ = bucket;
}

void Simulation::heap_push(HeapEntry e) {
  // Hole insertion: shift losing parents down and write the new entry once,
  // instead of swapping 24-byte entries at every level.
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulation::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulation::heap_pop_min() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulation::compact() {
  // Sweep every pending chain, unlink cancelled nodes, drop buckets that
  // drained entirely, then rebuild the heap in place (Floyd, O(n)).
  std::size_t kept = 0;
  for (std::size_t idx = 0; idx < heap_.size(); ++idx) {
    const HeapEntry e = heap_[idx];
    if (buckets_[e.bucket].gen != e.bgen) continue;  // stale entry
    Bucket& b = buckets_[e.bucket];
    std::uint32_t prev = kNoIndex;
    std::uint32_t cur = b.head;
    while (cur != kNoIndex) {
      const std::uint32_t nxt = slot(cur).next;
      if (!slot(cur).fn) {
        if (prev == kNoIndex) {
          b.head = nxt;
        } else {
          slot(prev).next = nxt;
        }
        if (b.tail == cur) b.tail = prev;
        free_slot(cur);
        --dead_;
      } else {
        prev = cur;
      }
      cur = nxt;
    }
    if (b.head == kNoIndex) {
      free_bucket(e.bucket);
      continue;
    }
    heap_[kept++] = e;
  }
  heap_.resize(kept);
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

EventId Simulation::schedule(Ns delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(Ns when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  assert(fn && "cannot schedule an empty callable");
  const std::uint32_t si = acquire_slot();
  Slot& s = slot(si);
  s.fn = std::move(fn);
  s.next = kNoIndex;
  const EventId id = (static_cast<EventId>(si) << 32) | s.gen;
  CacheEntry& c = cache_[when & (kCacheSize - 1)];
  if (c.when == when && c.bucket < buckets_.size() &&
      buckets_[c.bucket].gen == c.bgen) {
    // Fast path: a chain for this exact timestamp is open — append in
    // O(1), no heap operation.
    Bucket& b = buckets_[c.bucket];
    slot(b.tail).next = si;
    b.tail = si;
  } else {
    const std::uint32_t bi = acquire_bucket();
    Bucket& b = buckets_[bi];
    b.when = when;
    b.bseq = next_bseq_++;
    b.head = b.tail = si;
    heap_push(HeapEntry{when, b.bseq, bi, b.gen});
    c = CacheEntry{when, bi, b.gen};
  }
  ++live_;
  return id;
}

bool Simulation::cancel(EventId id) noexcept {
  const auto si = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (si >= slot_count_ || slot(si).gen != gen) return false;
  // The node stays chained (its slot cannot be reused yet); the empty
  // callable marks it dead for the pop path and the sweep.
  slot(si).fn.reset();
  ++slot(si).gen;
  --live_;
  ++dead_;
  ++cancelled_;
  // Reclaim in bulk once tombstones outnumber live events, so
  // schedule/cancel churn cannot grow the queue without bound.
  if (dead_ > live_ && dead_ >= kCompactMinDead) compact();
  return true;
}

bool Simulation::step(Ns until) {
  // Inclusive bound: events at exactly `until` run.  (An event at the
  // ~Ns{0} sentinel itself can never be reached; nothing schedules there.)
  return step_before(until == ~Ns{0} ? until : until + 1);
}

bool Simulation::step_before(Ns bound) {
  for (;;) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    Bucket& b = buckets_[top.bucket];
    if (b.gen != top.bgen) {  // bucket reclaimed by a sweep
      heap_pop_min();
      continue;
    }
    // Skip cancelled nodes at the chain head.
    std::uint32_t head = b.head;
    while (head != kNoIndex && !slot(head).fn) {
      const std::uint32_t nxt = slot(head).next;
      free_slot(head);
      --dead_;
      head = nxt;
    }
    b.head = head;
    if (head == kNoIndex) {  // chain fully cancelled
      heap_pop_min();
      free_bucket(top.bucket);
      continue;
    }
    if (top.when >= bound) return false;
    // Move the callback out before running it: executing may schedule new
    // events (slot chunks have stable addresses, but the freelist and the
    // claimed slot's state change under the callback).
    EventFn fn = std::move(slot(head).fn);
    b.head = slot(head).next;
    if (b.head == kNoIndex) {
      heap_pop_min();
      free_bucket(top.bucket);
    }
    free_slot(head);
    --live_;
    now_ = top.when;
    ++executed_;
    fn();
    return true;
  }
}

std::uint64_t Simulation::run_before(Ns bound) {
  std::uint64_t n = 0;
  while (step_before(bound)) ++n;
  return n;
}

Ns Simulation::next_event_time() noexcept {
  for (;;) {
    if (heap_.empty()) return ~Ns{0};
    const HeapEntry top = heap_.front();
    Bucket& b = buckets_[top.bucket];
    if (b.gen != top.bgen) {
      heap_pop_min();
      continue;
    }
    std::uint32_t head = b.head;
    while (head != kNoIndex && !slot(head).fn) {
      const std::uint32_t nxt = slot(head).next;
      free_slot(head);
      --dead_;
      head = nxt;
    }
    b.head = head;
    if (head == kNoIndex) {
      heap_pop_min();
      free_bucket(top.bucket);
      continue;
    }
    return top.when;
  }
}

void Simulation::advance_to(Ns t) noexcept {
  assert(t >= now_ && "cannot rewind the clock");
  now_ = t;
}

Ns Simulation::run(Ns until) {
  while (step(until)) {
  }
  if (until != ~Ns{0} && now_ < until) now_ = until;
  return now_;
}

}  // namespace ipipe::sim
