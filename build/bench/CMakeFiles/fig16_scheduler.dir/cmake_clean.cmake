file(REMOVE_RECURSE
  "CMakeFiles/fig16_scheduler.dir/fig16_scheduler.cc.o"
  "CMakeFiles/fig16_scheduler.dir/fig16_scheduler.cc.o.d"
  "fig16_scheduler"
  "fig16_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
