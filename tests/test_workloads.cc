#include <gtest/gtest.h>

#include "apps/dt/dt_actors.h"
#include "apps/rkv/rkv_messages.h"
#include "apps/rta/rta_actors.h"
#include "workloads/app_workloads.h"

namespace ipipe::workloads {
namespace {

TEST(KvWorkload, ReadWriteMixMatchesConfig) {
  KvWorkloadParams params;
  params.consensus_actor = 5;
  params.read_fraction = 0.95;
  params.frame_size = 512;
  auto make = kv_workload(params);
  Rng rng(1);
  int reads = 0;
  int writes = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto pkt = make(static_cast<std::uint64_t>(i), rng, netsim::PacketPool::local());
    ASSERT_NE(pkt, nullptr);
    EXPECT_EQ(pkt->dst_actor, 5u);
    EXPECT_EQ(pkt->frame_size, 512u);
    const auto req = rkv::ClientReq::decode(pkt->payload);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->key.size(), 16u);  // §5.1: 16B keys
    if (req->op == rkv::Op::kGet) {
      ++reads;
      EXPECT_TRUE(req->value.empty());
    } else {
      ++writes;
      EXPECT_FALSE(req->value.empty());
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.95, 0.01);
  EXPECT_EQ(reads + writes, n);
}

TEST(KvWorkload, ValueSizeScalesWithFrame) {
  Rng rng(2);
  std::size_t small_val = 0;
  std::size_t big_val = 0;
  for (const std::uint32_t frame : {256u, 1024u}) {
    KvWorkloadParams params;
    params.frame_size = frame;
    params.read_fraction = 0.0;  // all writes
    auto make = kv_workload(params);
    const auto pkt = make(1, rng, netsim::PacketPool::local());
    const auto req = rkv::ClientReq::decode(pkt->payload);
    (frame == 256 ? small_val : big_val) = req->value.size();
  }
  EXPECT_GT(big_val, small_val * 2);
}

TEST(KvWorkload, ZipfSkewConcentratesKeys) {
  KvWorkloadParams params;
  params.num_keys = 10'000;
  params.zipf_theta = 0.99;
  params.read_fraction = 1.0;
  auto make = kv_workload(params);
  Rng rng(3);
  std::unordered_map<std::string, int> counts;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto pkt = make(static_cast<std::uint64_t>(i), rng, netsim::PacketPool::local());
    const auto req = rkv::ClientReq::decode(pkt->payload);
    ++counts[req->key];
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  // Uniform would give ~2 per key; zipf-0.99 head gets hundreds.
  EXPECT_GT(max_count, 200);
}

TEST(TxnWorkload, ShapeMatchesPaperTransactions) {
  TxnWorkloadParams params;
  params.coordinator_actor = 9;
  params.participants = {1, 2};
  auto make = txn_workload(params);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto pkt = make(static_cast<std::uint64_t>(i), rng, netsim::PacketPool::local());
    EXPECT_EQ(pkt->msg_type, dt::kTxnRequest);
    const auto txn = dt::TxnRequest::decode(pkt->payload);
    ASSERT_TRUE(txn.has_value());
    // §5.1: two reads and one write per transaction.
    EXPECT_EQ(txn->reads.size(), 2u);
    EXPECT_EQ(txn->writes.size(), 1u);
    for (const auto& r : txn->reads) {
      EXPECT_TRUE(r.node == 1 || r.node == 2);
    }
    EXPECT_LE(txn->writes[0].value.size(), dt::DmoHashTable::kInlineValue);
  }
}

TEST(RtaWorkload, TuplesPerRequestScaleWithFrame) {
  Rng rng(5);
  std::size_t small_n = 0;
  std::size_t big_n = 0;
  for (const std::uint32_t frame : {256u, 1024u}) {
    RtaWorkloadParams params;
    params.frame_size = frame;
    auto make = rta_workload(params);
    const auto pkt = make(1, rng, netsim::PacketPool::local());
    EXPECT_EQ(pkt->msg_type, rta::kTuples);
    (frame == 256 ? small_n : big_n) = rta::unpack_tuples(pkt->payload).size();
  }
  EXPECT_GT(big_n, small_n * 2);
  EXPECT_GE(small_n, 1u);
}

TEST(MakeKey, FixedLengthZeroPadded) {
  EXPECT_EQ(make_key(7, 16).size(), 16u);
  EXPECT_EQ(make_key(123456789, 16).size(), 16u);
  EXPECT_NE(make_key(1, 16), make_key(2, 16));
}

class FrameSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FrameSweep, EchoWorkloadRespectsFrameSize) {
  EchoWorkloadParams params;
  params.frame_size = GetParam();
  params.server = 3;
  auto make = echo_workload(params);
  Rng rng(6);
  const auto pkt = make(1, rng, netsim::PacketPool::local());
  EXPECT_EQ(pkt->frame_size, GetParam());
  EXPECT_EQ(pkt->dst, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, FrameSweep,
                         ::testing::Values(64u, 128u, 256u, 512u, 1024u,
                                           1500u));

}  // namespace
}  // namespace ipipe::workloads
