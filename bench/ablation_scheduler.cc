// Ablation study: sensitivity of the iPipe runtime to its tuning knobs
// (DESIGN.md design-choice index).  One bimodal high-dispersion workload
// at 0.8 load on the 10GbE CN2350; each table sweeps one knob with the
// others at their defaults.
//   (a) tail_thresh      — when do downgrades start paying off?
//   (b) migration_cooldown — placement-change damping vs responsiveness
//   (c) mgmt_period      — management-core bookkeeping cadence
//   (d) EWMA alpha (hysteresis factor) — §3.2.2's α
#include <cstdio>

#include "common/table.h"
#include "harness/sweep.h"
#include "harness/trace_opts.h"
#include "ipipe/runtime.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

/// --trace-out= captures the first sweep point (defaults-like config).
/// The traced point is chosen by index, so a parallel sweep captures the
/// exact same run as the sequential one.
bench::TraceOpts g_trace;

class BimodalActor final : public Actor {
 public:
  BimodalActor() : Actor("bimodal") {}
  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(usec(env.rng().bernoulli(0.5) ? 12.0 : 60.0));
    env.reply(req, 2, {});
  }
};

struct Outcome {
  double p99_us = 0.0;
  double mean_us = 0.0;
  std::uint64_t downgrades = 0;
  std::uint64_t migrations = 0;
};

Outcome run_with(IPipeConfig cfg, bool traced,
                 bench::PointPerf* perf = nullptr) {
  testbed::Cluster cluster;
  testbed::ServerSpec spec;
  spec.ipipe = cfg;
  if (traced) g_trace.apply(spec.ipipe);
  auto& server = cluster.add_server(spec);
  std::vector<ActorId> actors;
  for (int i = 0; i < 3; ++i) {
    actors.push_back(
        server.runtime().register_actor(std::make_unique<BimodalActor>()));
  }
  const double mix_us = 36.0 + 2.0;  // service + forwarding tax
  const double rate = 0.8 * 12e6 / mix_us;
  auto& client = cluster.add_client(10.0, [&, actors](std::uint64_t seq, Rng&, netsim::PacketPool& pool) {
    auto pkt = pool.make();
    pkt->dst = 0;
    pkt->dst_actor = actors[seq % actors.size()];
    pkt->msg_type = 1;
    pkt->frame_size = 512;
    return pkt;
  });
  client.set_warmup(msec(10));
  client.start_open_loop(rate, msec(50), true);
  cluster.run_until(msec(65));
  if (traced) {
    bench::write_cluster_trace(g_trace, cluster, "ablation/bimodal");
  }
  if (perf != nullptr) bench::fill_perf(*perf, cluster);

  Outcome out;
  out.p99_us = to_us(client.latencies().p99());
  out.mean_us = client.latencies().mean_ns() / 1000.0;
  out.downgrades = server.runtime().downgrades();
  out.migrations =
      server.runtime().push_migrations() + server.runtime().pull_migrations();
  return out;
}

struct KnobSweep {
  const char* title;
  const char* knob;
  std::vector<std::pair<std::string, IPipeConfig>> points;
};

void emit(const KnobSweep& sweep, const std::vector<Outcome>& outcomes,
          std::size_t& k) {
  std::printf("\nAblation: %s\n", sweep.title);
  TablePrinter table(
      {sweep.knob, "mean(us)", "p99(us)", "downgrades", "migrations"});
  for (const auto& [label, cfg] : sweep.points) {
    const Outcome& out = outcomes[k++];
    table.add_row({label, strf("%.1f", out.mean_us), strf("%.1f", out.p99_us),
                   strf("%llu", static_cast<unsigned long long>(out.downgrades)),
                   strf("%llu",
                        static_cast<unsigned long long>(out.migrations))});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = bench::parse_trace_opts(argc, argv);
  const bench::SweepOpts sweep_opts = bench::parse_sweep_opts(argc, argv);
  IPipeConfig base;
  base.tail_thresh = usec(90);
  base.mean_thresh = usec(55);

  std::vector<KnobSweep> sweeps;
  {
    KnobSweep ks{"tail_thresh (downgrade trigger)", "tail_thresh", {}};
    for (const double us : {40.0, 70.0, 90.0, 150.0, 400.0}) {
      IPipeConfig cfg = base;
      cfg.tail_thresh = usec(us);
      ks.points.emplace_back(strf("%.0fus", us), cfg);
    }
    sweeps.push_back(std::move(ks));
  }
  {
    KnobSweep ks{"migration cooldown (placement damping)", "cooldown", {}};
    for (const double ms : {1.0, 4.0, 10.0, 25.0}) {
      IPipeConfig cfg = base;
      cfg.migration_cooldown = msec(ms);
      ks.points.emplace_back(strf("%.0fms", ms), cfg);
    }
    sweeps.push_back(std::move(ks));
  }
  {
    KnobSweep ks{"management-core cadence", "mgmt_period", {}};
    for (const double us : {5.0, 20.0, 80.0, 320.0}) {
      IPipeConfig cfg = base;
      cfg.mgmt_period = usec(us);
      ks.points.emplace_back(strf("%.0fus", us), cfg);
    }
    sweeps.push_back(std::move(ks));
  }
  {
    KnobSweep ks{"hysteresis factor alpha (§3.2.2)", "alpha", {}};
    for (const double alpha : {0.05, 0.15, 0.25, 0.5}) {
      IPipeConfig cfg = base;
      cfg.alpha = alpha;
      ks.points.emplace_back(strf("%.2f", alpha), cfg);
    }
    sweeps.push_back(std::move(ks));
  }

  // Flatten, compute every point through the sweep runner (parallel under
  // --jobs=N; the trace capture is pinned to point 0 so it lands on the
  // same run either way), then print the tables in order.
  struct Flat {
    std::size_t sweep_idx;
    const IPipeConfig* cfg;
    const std::string* label;
  };
  std::vector<Flat> flat;
  for (std::size_t si = 0; si < sweeps.size(); ++si) {
    for (const auto& [label, cfg] : sweeps[si].points) {
      flat.push_back({si, &cfg, &label});
    }
  }
  bench::SweepRunner runner(sweep_opts);
  const auto outcomes = runner.map(
      flat.size(), [&](std::size_t i, bench::PointPerf& perf) {
        perf.label = strf("%s=%s", sweeps[flat[i].sweep_idx].knob,
                          flat[i].label->c_str());
        const bool traced = g_trace.enabled() && i == 0;
        return run_with(*flat[i].cfg, traced, &perf);
      });
  std::size_t k = 0;
  for (const auto& ks : sweeps) emit(ks, outcomes, k);
  runner.write_json("ablation_scheduler");
  std::printf(
      "\nReading: very low tail thresholds downgrade everything (DRR "
      "dynamics + churn); very high ones never react.  Short cooldowns "
      "thrash placements; long ones react late.  The defaults sit on the "
      "flat part of each curve.\n");
  return 0;
}
