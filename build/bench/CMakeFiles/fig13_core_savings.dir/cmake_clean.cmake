file(REMOVE_RECURSE
  "CMakeFiles/fig13_core_savings.dir/fig13_core_savings.cc.o"
  "CMakeFiles/fig13_core_savings.dir/fig13_core_savings.cc.o.d"
  "fig13_core_savings"
  "fig13_core_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_core_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
