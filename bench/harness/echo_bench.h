// Shared echo-server measurement used by the Figure 2-5 benchmarks.
#pragma once

#include "common/stats.h"
#include "common/units.h"
#include "netsim/network.h"
#include "nic/nic_model.h"
#include "sim/simulation.h"
#include "testbed/echo_firmware.h"
#include "workloads/app_workloads.h"
#include "workloads/client.h"

namespace ipipe::bench {

struct EchoResult {
  double goodput_gbps = 0.0;
  LatencyHistogram latency;
};

/// Run the NIC-resident echo server at (just above) line-rate offered
/// load and report achieved goodput + client-observed latency.
inline EchoResult run_echo(const nic::NicConfig& cfg, std::uint32_t frame,
                           unsigned cores, Ns extra_processing = 0,
                           double offered_scale = 1.05,
                           Ns duration = msec(10), bool poisson = false) {
  sim::Simulation sim;
  netsim::Network net(sim, 300);
  nic::NicModel nic(sim, cfg, net, 0);
  nic.set_active_cores(cores);
  nic.set_steer_to_nic([](const netsim::Packet&) { return true; });
  testbed::EchoFirmware echo(extra_processing);
  nic.set_firmware(&echo);

  workloads::EchoWorkloadParams params;
  params.server = 0;
  params.frame_size = frame;
  workloads::ClientGen client(sim, net, 1000, 100.0,
                              workloads::echo_workload(params));
  const double rate = line_rate_pps(frame, cfg.link_gbps) * offered_scale;
  const Ns warmup = duration / 5;
  client.set_warmup(warmup);
  client.start_open_loop(rate, duration, poisson);
  sim.run(duration + msec(1));

  EchoResult result;
  const double window =
      to_sec(client.last_completion() - client.first_measured_completion());
  if (window > 0.0) {
    const double pps =
        static_cast<double>(client.completed_after_warmup()) / window;
    result.goodput_gbps = goodput_gbps(pps, frame);
  }
  result.latency = client.latencies();
  return result;
}

}  // namespace ipipe::bench
