// Million-client open-loop workload generator for the sharded RKV
// scale-out (§5.1's KV workload, scaled to rack population).
//
// One fabric endpoint multiplexes a large population of LOGICAL clients
// (default 10^6): arrivals form an aggregate open-loop Poisson process
// whose rate swings diurnally, each arrival drawn for a random logical
// client and a Zipf-popular key.  Simulating each client as its own
// fabric port would melt the switch model for no fidelity gain — what
// matters at this scale is the arrival process, the key popularity, and
// the request-id space, all of which the multiplexer preserves exactly
// (request ids come from the shared workloads::RequestId scheme, so the
// million-client population is collision-free by construction).
//
// The generator is also the client-side ROUTER for the sharded store:
//   * key -> shard -> group via an epoch-stamped shard::RouteTable;
//   * GETs go to the group's NIC hot-key cache front door when one is
//     deployed (falling back to the consensus actor), PUTs go through
//     the same front door so the write-forward path stays hot;
//   * kNotLeader replies re-steer the group's leader hint, kWrongShard
//     replies re-resolve against the current table (stale-route retry);
//   * retries use the same request id so server-side dedup absorbs
//     duplicates, with exponential backoff.
//
// And it is an ONLINE CHECKER.  Every PUT value embeds
//   [key_id u32][write_seq u64][request_id u64] + deterministic padding
// and writes are serialized per key (a new write waits for the previous
// ack), so per-key acked sequence numbers are totally ordered.  The
// generator tracks floor_seq = highest acked write per key and flags:
//   * a GET that returns a sequence below the floor it was issued at
//     (stale read — e.g. a cache serving a dead entry), and
//   * a GET that returns kNotFound while the floor is nonzero
//     (lost acked write).
// A write that exhausts its retries is ABANDONED: it may still commit
// later (a stuck Paxos slot re-driven after a leader change), so the
// key's floor resets to zero — checks suspend — until the next acked
// write or observed read re-establishes it.  This keeps the checker
// sound under chaos without a full linearizability pass (the sampled
// Wing–Gong pass in verify/ provides that separately).
//
// Finally, the generator drives the two-phase REBALANCE protocol:
//   freeze moved shards (new arrivals queue) -> drain in-flight ops ->
//   grant: Op::kShardCfg write to each gaining group with the UNION of
//     old and new ownership (additive: both groups claim the shard) ->
//   copy: for every ever-written key on a moved shard, GET from the old
//     owner and PUT the value VERBATIM to the new owner (preserving the
//     embedded write_seq, so floors carry over) ->
//   revoke: kShardCfg with final ownership to every shrinking group ->
//   adopt the new table, replay queued ops.
// Config changes ride the Paxos log like any write, so replicas and
// future leaders converge on ownership through the existing catch-up
// machinery; clients racing the handoff bounce off kWrongShard.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "ipipe/shard.h"
#include "netsim/network.h"
#include "sim/simulation.h"
#include "workloads/client.h"

namespace ipipe::workloads {

/// One Paxos group as the router sees it.
struct ShardTarget {
  std::vector<netsim::NodeId> replicas;
  netsim::ActorId consensus = 0;
  netsim::ActorId cache = 0;  ///< 0 = no NIC cache front door
  netsim::NodeId leader_hint = 0;
};

struct OpenLoopParams {
  std::uint64_t clients = 1'000'000;  ///< logical client population
  double rate_rps = 20'000.0;         ///< aggregate arrival rate (midline)
  double get_fraction = 0.90;
  std::uint64_t key_space = 100'000;
  double zipf_theta = 1.0;  ///< key popularity skew
  /// Total value bytes; >= 20 (checker header) — padding is a pure
  /// function of the key so copies stay verbatim-comparable.
  std::size_t value_len = 64;
  double diurnal_amplitude = 0.0;  ///< rate swing fraction in [0, 1)
  Ns diurnal_period = sec(20);
  std::uint64_t seed = 42;
  double link_gbps = 100.0;

  Ns retry_timeout = msec(80);
  unsigned max_retries = 8;
  double retry_backoff = 2.0;
  Ns retry_cap = msec(800);
  /// Immediate re-steers per op on kNotLeader/kWrongShard before backing
  /// off to the retry timer (bounds redirect ping-pong).
  unsigned max_redirects = 16;
};

class OpenLoopGen : public netsim::Endpoint {
 public:
  OpenLoopGen(sim::Simulation& sim, netsim::Network& net, netsim::NodeId self,
              OpenLoopParams params);
  ~OpenLoopGen() override;

  /// Router configuration; call both before start().
  void set_groups(std::vector<ShardTarget> groups) {
    groups_ = std::move(groups);
  }
  void set_route_table(shard::RouteTable table);

  void start(Ns stop_at);
  void set_warmup(Ns until) noexcept { warmup_until_ = until; }

  /// Begin the two-phase rebalance onto `next` (epoch must advance).
  /// `done` fires after the new table is adopted and queued ops replay.
  void start_rebalance(shard::RouteTable next,
                       std::function<void()> done = {});
  [[nodiscard]] bool rebalance_active() const noexcept {
    return rphase_ != RebalPhase::kIdle;
  }
  [[nodiscard]] std::uint64_t rebalances_done() const noexcept {
    return rebalances_done_;
  }

  /// Post-run audit: issue a GET for every key with a nonzero floor (up
  /// to `max_keys`); kNotFound surfaces as lost_acked().  Returns the
  /// number issued; poll readback_pending() while running the sim on.
  std::size_t issue_readback(std::size_t max_keys);
  [[nodiscard]] std::uint64_t readback_pending() const noexcept {
    return readback_pending_;
  }

  void receive(netsim::PacketPtr pkt) override;

  // ---- checker verdicts --------------------------------------------------
  [[nodiscard]] std::uint64_t stale_reads() const noexcept {
    return stale_reads_;
  }
  [[nodiscard]] std::uint64_t lost_acked() const noexcept {
    return lost_acked_;
  }
  [[nodiscard]] std::uint64_t abandoned_writes() const noexcept {
    return abandoned_writes_;
  }

  // ---- traffic accounting ------------------------------------------------
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t gets_sent() const noexcept { return gets_sent_; }
  [[nodiscard]] std::uint64_t puts_sent() const noexcept { return puts_sent_; }
  [[nodiscard]] std::uint64_t acked_writes() const noexcept {
    return acked_writes_;
  }
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] std::uint64_t notleader_redirects() const noexcept {
    return notleader_redirects_;
  }
  [[nodiscard]] std::uint64_t wrong_shard_retries() const noexcept {
    return wrong_shard_retries_;
  }
  [[nodiscard]] std::uint64_t server_errors() const noexcept {
    return server_errors_;
  }
  [[nodiscard]] std::uint64_t distinct_clients() const noexcept {
    return distinct_clients_;
  }
  [[nodiscard]] const LatencyHistogram& latencies() const noexcept {
    return hist_;
  }
  [[nodiscard]] std::uint64_t completed_after_warmup() const noexcept {
    return completed_measured_;
  }
  [[nodiscard]] netsim::NodeId node() const noexcept { return self_; }
  [[nodiscard]] const shard::RouteTable& route_table() const noexcept {
    return table_;
  }
  [[nodiscard]] std::vector<ShardTarget>& groups() noexcept { return groups_; }

  /// Highest acked write sequence for a key (0 = none / suspended).
  [[nodiscard]] std::uint64_t key_floor(std::uint32_t key_id) const {
    return key_id < keys_.size() ? keys_[key_id].floor_seq : 0;
  }
  [[nodiscard]] static std::string key_name(std::uint32_t key_id) {
    return "k" + std::to_string(key_id);
  }

  // ---- history-recorder hooks (ClientGen-shaped) -------------------------
  /// First transmission of each client-visible op (GET/PUT; rebalance
  /// control traffic is not a client op and does not fire this).
  void set_on_issue(std::function<void(const netsim::Packet&)> fn) {
    on_issue_ = std::move(fn);
  }
  void add_on_reply(std::function<void(const netsim::Packet&)> fn) {
    on_reply_.push_back(std::move(fn));
  }

 private:
  enum class Kind : std::uint8_t { kGet, kPut, kCfg, kCopyGet, kCopyPut };
  enum class RebalPhase : std::uint8_t {
    kIdle,
    kDrain,
    kGrant,
    kCopy,
    kRevoke
  };

  struct KeyState {
    std::uint64_t floor_seq = 0;  ///< highest acked write (0 = suspended)
    std::uint64_t next_seq = 1;
    bool write_inflight = false;
    std::uint16_t pending_writes = 0;  ///< collapsed queued writes
  };

  struct OpRec {
    Kind kind = Kind::kGet;
    std::uint32_t key_id = 0;
    std::uint32_t shard = 0;
    std::uint32_t group = 0;
    std::uint64_t write_seq = 0;     ///< puts
    std::uint64_t issued_floor = 0;  ///< gets: floor at issue
    Ns created = 0;
    unsigned attempts = 1;
    unsigned redirects = 0;
    Ns cur_timeout = 0;
    bool readback = false;
    bool counts_drain = false;  ///< on a frozen shard during kDrain
    netsim::Packet copy;        ///< retransmission template
  };

  struct QueuedOp {
    std::uint32_t key_id = 0;
    bool is_put = false;
    bool owns_write_slot = false;  ///< put already holds write_inflight
  };

  void on_arrival();
  void schedule_next_arrival();
  void issue_get(std::uint32_t key_id, bool readback);
  void issue_put(std::uint32_t key_id);
  void send_put(std::uint32_t key_id);  ///< slot already held
  void transmit(OpRec rec, std::uint16_t msg_type,
                std::vector<std::uint8_t> payload, netsim::NodeId dst,
                netsim::ActorId dst_actor, bool client_visible);
  void transmit_with_rid(std::uint64_t rid, OpRec rec, std::uint16_t msg_type,
                         std::vector<std::uint8_t> payload, netsim::NodeId dst,
                         netsim::ActorId dst_actor, bool client_visible);
  void arm_retry(std::uint64_t rid, unsigned attempt);
  void on_retry_timeout(std::uint64_t rid, unsigned attempt);
  void abandon(std::uint64_t rid, OpRec rec);
  void reissue(OpRec rec);
  void rotate_hint(std::uint32_t group);
  void complete_write_slot(std::uint32_t key_id);
  void note_drained(const OpRec& rec);
  [[nodiscard]] std::vector<std::uint8_t> make_value(std::uint32_t key_id,
                                                     std::uint64_t write_seq,
                                                     std::uint64_t rid) const;
  [[nodiscard]] bool frozen(std::uint32_t shard) const {
    return rphase_ != RebalPhase::kIdle && moved_.count(shard) != 0;
  }
  /// Front door for client ops: cache actor when deployed, else consensus.
  void route(const ShardTarget& g, netsim::NodeId& dst,
             netsim::ActorId& actor) const {
    dst = g.leader_hint;
    actor = g.cache != 0 ? g.cache : g.consensus;
  }

  // Rebalance machinery.
  void begin_grant();
  void begin_copy();
  void start_copy_chains();
  void copy_chain_done();
  void send_cfg(std::uint32_t group, std::vector<std::uint32_t> owned);
  void send_copy_get(std::uint32_t key_id);
  void send_copy_put(std::uint32_t key_id, std::vector<std::uint8_t> value);
  void begin_revoke();
  void finish_rebalance();

  sim::Simulation& sim_;
  netsim::Network& net_;
  netsim::NodeId self_;
  OpenLoopParams params_;
  Rng rng_;
  ZipfDist zipf_;

  std::vector<ShardTarget> groups_;
  shard::RouteTable table_;
  std::vector<KeyState> keys_;
  std::vector<bool> client_seen_;
  std::uint64_t distinct_clients_ = 0;

  Ns stop_at_ = 0;
  Ns warmup_until_ = 0;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, OpRec> inflight_;

  // Rebalance state.
  RebalPhase rphase_ = RebalPhase::kIdle;
  shard::RouteTable next_table_;
  std::set<std::uint32_t> moved_;
  std::uint64_t drain_inflight_ = 0;
  std::uint64_t pending_cfg_ = 0;
  std::uint64_t pending_copies_ = 0;
  std::vector<std::uint32_t> copy_keys_;
  std::size_t copy_cursor_ = 0;
  std::deque<QueuedOp> queued_;
  std::function<void()> on_rebalance_done_;
  std::uint64_t rebalances_done_ = 0;

  // Counters.
  std::uint64_t sent_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t completed_measured_ = 0;
  std::uint64_t gets_sent_ = 0;
  std::uint64_t puts_sent_ = 0;
  std::uint64_t acked_writes_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t notleader_redirects_ = 0;
  std::uint64_t wrong_shard_retries_ = 0;
  std::uint64_t server_errors_ = 0;
  std::uint64_t stale_reads_ = 0;
  std::uint64_t lost_acked_ = 0;
  std::uint64_t abandoned_writes_ = 0;
  std::uint64_t readback_pending_ = 0;
  std::uint64_t cfg_retries_ = 0;
  std::uint64_t copy_retries_ = 0;
  LatencyHistogram hist_;

  std::function<void(const netsim::Packet&)> on_issue_;
  std::vector<std::function<void(const netsim::Packet&)>> on_reply_;
};

}  // namespace ipipe::workloads
