// ActorEnv implementations for NIC-side and host-side execution.
//
// These adapt the generic ActorEnv service interface onto the concrete
// execution contexts of NicModel / HostModel: cost hooks resolve against
// the local clock, IPC and cache hierarchy, and messaging routes through
// the wire, the PCIe channel or the local work queues as appropriate.
// Cross-PCIe local_send goes through the runtime's reliable
// send_or_queue path and charges the full per-message channel handling
// cost; same-side delivery charges half (a plain queue insert).
#pragma once

#include "hostsim/host_model.h"
#include "ipipe/actor.h"
#include "ipipe/runtime.h"
#include "nic/nic_model.h"

namespace ipipe {

/// Shared DMO plumbing (owner checks, translation cost, traps).
class EnvBase : public ActorEnv {
 public:
  EnvBase(Runtime& rt, ActorControl& ac) : rt_(rt), ac_(ac) {}

  [[nodiscard]] ActorId self() const override { return ac_.id; }
  [[nodiscard]] NodeId node() const override { return rt_.nic().node(); }
  [[nodiscard]] Rng& rng() override { return rt_.rng(); }

  [[nodiscard]] ObjId dmo_alloc(std::uint32_t size) override;
  bool dmo_free(ObjId id) override;
  [[nodiscard]] bool dmo_read(ObjId id, std::uint32_t off,
                              std::span<std::uint8_t> out) override;
  bool dmo_write(ObjId id, std::uint32_t off,
                 std::span<const std::uint8_t> in) override;
  bool dmo_memset(ObjId id, std::uint8_t value, std::uint32_t off,
                  std::uint32_t len) override;
  [[nodiscard]] std::uint32_t dmo_size(ObjId id) const override;
  [[nodiscard]] std::uint64_t working_set() const override;

  void schedule_self(Ns delay, std::uint16_t type,
                     std::vector<std::uint8_t> payload = {}) override {
    rt_.schedule_actor_msg(ac_.id, delay, type, std::move(payload));
  }

  [[nodiscard]] netsim::PacketPtr clone_packet(
      const netsim::Packet& src) override {
    return rt_.pool().make(src);
  }

 protected:
  /// Charge the DMO translation + memory cost for touching `bytes`.
  void charge_dmo(std::uint64_t bytes);
  /// Charge a blocking PCIe DMA for a remote-residency (kWrongSide) DMO
  /// access, then the caller retries the access unchecked.
  void charge_remote(std::uint64_t bytes, bool is_write);
  bool check(DmoStatus status);
  [[nodiscard]] netsim::PacketPtr make_packet(NodeId dst, ActorId dst_actor,
                                              std::uint16_t type,
                                              std::vector<std::uint8_t> payload,
                                              std::uint32_t frame_size);
  [[nodiscard]] MemSide side() const {
    return on_nic() ? MemSide::kNic : MemSide::kHost;
  }

  Runtime& rt_;
  ActorControl& ac_;
};

class NicEnv final : public EnvBase {
 public:
  NicEnv(Runtime& rt, ActorControl& ac, nic::NicExecContext& ctx)
      : EnvBase(rt, ac), ctx_(ctx) {}

  [[nodiscard]] Ns now() const override { return ctx_.now(); }
  [[nodiscard]] bool on_nic() const override { return true; }

  void charge(Ns t) override { ctx_.charge(t); }
  void compute(double units) override;
  void mem(std::uint64_t ws, std::uint64_t n) override { ctx_.mem(ws, n); }
  void stream(std::uint64_t ws, std::uint64_t bytes) override {
    ctx_.stream(ws, bytes);
  }
  void accel(nic::AccelKind kind, std::uint32_t bytes,
             std::uint32_t batch) override;

  void send(NodeId dst_node, ActorId dst_actor, std::uint16_t type,
            std::vector<std::uint8_t> payload,
            std::uint32_t frame_size) override;
  void reply(const netsim::Packet& req, std::uint16_t type,
             std::vector<std::uint8_t> payload,
             std::uint32_t frame_size) override;
  void local_send(ActorId dst_actor, std::uint16_t type,
                  std::vector<std::uint8_t> payload) override;
  void forward(ActorId dst_actor, netsim::PacketPtr pkt) override;

 private:
  nic::NicExecContext& ctx_;
};

class HostEnv final : public EnvBase {
 public:
  HostEnv(Runtime& rt, ActorControl& ac, hostsim::HostExecContext& ctx)
      : EnvBase(rt, ac), ctx_(ctx) {}

  [[nodiscard]] Ns now() const override { return ctx_.now(); }
  [[nodiscard]] bool on_nic() const override { return false; }

  void charge(Ns t) override { ctx_.charge(t); }
  void compute(double units) override;
  void mem(std::uint64_t ws, std::uint64_t n) override { ctx_.mem(ws, n); }
  void stream(std::uint64_t ws, std::uint64_t bytes) override {
    ctx_.stream(ws, bytes);
  }
  void accel(nic::AccelKind kind, std::uint32_t bytes,
             std::uint32_t batch) override;

  void send(NodeId dst_node, ActorId dst_actor, std::uint16_t type,
            std::vector<std::uint8_t> payload,
            std::uint32_t frame_size) override;
  void reply(const netsim::Packet& req, std::uint16_t type,
             std::vector<std::uint8_t> payload,
             std::uint32_t frame_size) override;
  void local_send(ActorId dst_actor, std::uint16_t type,
                  std::vector<std::uint8_t> payload) override;
  void forward(ActorId dst_actor, netsim::PacketPtr pkt) override;

 private:
  hostsim::HostExecContext& ctx_;
};

}  // namespace ipipe
