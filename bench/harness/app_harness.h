// Shared harness for the macro-benchmarks (Figures 13-17): deploys one of
// the three paper applications on a simulated multi-node testbed in a
// given mode (iPipe / DPDK baseline / Floem / host-only-iPipe), drives it
// with the §5.1 workloads, and reports throughput, latency and per-role
// host core usage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "harness/trace_opts.h"
#include "testbed/cluster.h"

namespace ipipe::bench {

enum class App { kRta, kDt, kRkv };

[[nodiscard]] const char* app_name(App app);

/// Server roles whose host-core usage Figure 13 reports.
enum class Role {
  kRtaWorker,
  kDtCoordinator,
  kDtParticipant,
  kRkvLeader,
  kRkvFollower,
};

[[nodiscard]] const char* role_name(Role role);
[[nodiscard]] App app_of(Role role);

struct RunConfig {
  App app = App::kRkv;
  testbed::Mode mode = testbed::Mode::kIPipe;
  bool use_25g = false;           ///< CN2360/25GbE testbed vs CN2350/10GbE
  std::uint32_t frame_size = 512;
  unsigned outstanding = 16;      ///< closed-loop window per client
  Ns warmup = msec(10);
  Ns duration = msec(50);         ///< measured window after warmup
  IPipeConfig ipipe;              ///< runtime tuning (thresholds etc.)
  /// Floem-style static split for RTA: filter on the NIC, counter and
  /// ranker pinned to the host (stationary placement).
  bool floem_split = false;
  /// When set, tracing is enabled on every server and a trace document is
  /// written at the end of the run (label = app/mode).
  TraceOpts trace;
};

struct RunResult {
  double throughput_rps = 0.0;  ///< completed requests/s in the window
  double goodput_gbps = 0.0;
  LatencyHistogram latency;
  /// Average host cores busy per role present in this app.
  double host_cores[2] = {0.0, 0.0};  // [primary role, secondary role]
  double nic_cores[2] = {0.0, 0.0};
  std::uint64_t completed = 0;
  /// Simulator perf for this run (events executed, simulated seconds) —
  /// feeds SweepRunner's --bench-json emission.
  std::uint64_t sim_events = 0;
  double sim_seconds = 0.0;
  std::uint64_t push_migrations = 0;
  std::uint64_t downgrades = 0;
  /// Reliable-channel counters aggregated over all servers and both
  /// directions (drops avoided, retransmits, backpressure time, ...).
  ChannelDirStats channel;
};

/// One-line reliability summary for bench output ("chan: ..." or empty
/// when the channel saw no recoverable events).
[[nodiscard]] std::string channel_summary(const RunResult& r);

/// Role index inside RunResult::host_cores for this app:
/// RTA: {worker, worker}; DT: {coordinator, participant};
/// RKV: {leader, follower}.
[[nodiscard]] RunResult run_app(const RunConfig& cfg);

}  // namespace ipipe::bench
