// In-NIC key-value cache (KV-Direct-style) — the "KV cache" workload of
// Table 3.  Chained hash table over string keys with probe-count
// reporting for cost accounting.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <vector>

namespace ipipe::nf {

class KvCache {
 public:
  explicit KvCache(std::size_t buckets = 4096, std::size_t capacity = 1 << 20);

  struct OpStats {
    std::size_t probes = 0;
    bool hit = false;
  };

  OpStats put(const std::string& key, std::string value);
  [[nodiscard]] std::optional<std::string> get(const std::string& key,
                                               OpStats* stats = nullptr) const;
  bool del(const std::string& key);

  /// Retain only entries for which `keep(key)` is true; returns the
  /// number of entries dropped (shard-ownership revocation pruning).
  template <typename Pred>
  std::size_t prune(Pred keep) {
    std::size_t dropped = 0;
    for (auto& chain : buckets_) {
      for (auto it = chain.begin(); it != chain.end();) {
        if (keep(it->key)) {
          ++it;
        } else {
          bytes_ -= it->key.size() + it->value.size();
          it = chain.erase(it);
          --size_;
          ++dropped;
        }
      }
    }
    return dropped;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  [[nodiscard]] std::size_t bucket_of(const std::string& key) const;
  void evict_one();

  std::vector<std::list<Entry>> buckets_;
  std::size_t size_ = 0;
  std::uint64_t bytes_ = 0;
  std::size_t capacity_bytes_;
  std::uint64_t evictions_ = 0;
  std::size_t evict_cursor_ = 0;
};

}  // namespace ipipe::nf
