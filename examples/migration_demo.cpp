// Actor migration demo (§3.2.5): watch the iPipe scheduler shed a
// heavyweight actor to the host when the NIC saturates, then pull it back
// when load drops — with the 4-phase protocol timings printed.
//
// Build & run:  ./build/examples/migration_demo
#include <cstdio>

#include "ipipe/runtime.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

class HeavyActor final : public Actor {
 public:
  HeavyActor() : Actor("heavy") {}

  [[nodiscard]] std::uint64_t region_bytes() const override { return 32 * MiB; }

  void init(ActorEnv& env) override {
    for (int i = 0; i < 128; ++i) {
      (void)env.dmo_alloc(64 * 1024);  // 8MB of private state
    }
  }

  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.compute(20'000);  // ~17us on a wimpy core, ~2.7us on the host
    env.mem(8 * MiB, 20);
    env.reply(req, 2, {});
  }
};

}  // namespace

int main() {
  testbed::Cluster cluster;
  testbed::ServerSpec spec;
  spec.ipipe.mean_thresh = usec(25);
  auto& server = cluster.add_server(spec);

  const ActorId id =
      server.runtime().register_actor(std::make_unique<HeavyActor>());

  workloads::EchoWorkloadParams wl;
  wl.server = 0;
  wl.frame_size = 512;
  wl.actor = id;
  wl.msg_type = 1;
  auto& heavy_client = cluster.add_client(10.0, workloads::echo_workload(wl));
  auto& light_client = cluster.add_client(10.0, workloads::echo_workload(wl));

  // Heavy phase: 32 outstanding requests overload the NIC cores.
  heavy_client.start_closed_loop(32, msec(60));
  cluster.run_until(msec(62));  // let the heavy window drain
  const auto* control = server.runtime().control(id);
  std::printf("after heavy load:  actor on %s (%llu push migrations)\n",
              control->loc == ActorLoc::kNic ? "NIC" : "HOST",
              static_cast<unsigned long long>(
                  server.runtime().push_migrations()));
  std::printf("  migration phases (us): prepare=%.1f drain=%.1f objects=%.1f "
              "flush=%.1f\n",
              to_us(control->mig_phase_ns[0]), to_us(control->mig_phase_ns[1]),
              to_us(control->mig_phase_ns[2]), to_us(control->mig_phase_ns[3]));

  // Light phase: a single-request loop leaves the NIC idle; the scheduler
  // pulls the actor home.
  light_client.start_closed_loop(1, msec(300));
  cluster.run_until(msec(300));
  std::printf("after light load:  actor on %s (%llu pull migrations)\n",
              server.runtime().control(id)->loc == ActorLoc::kNic ? "NIC"
                                                                  : "HOST",
              static_cast<unsigned long long>(
                  server.runtime().pull_migrations()));
  std::printf("served %llu requests total; NIC=%llu host=%llu\n",
              static_cast<unsigned long long>(heavy_client.completed() +
                                              light_client.completed()),
              static_cast<unsigned long long>(
                  server.runtime().requests_on_nic()),
              static_cast<unsigned long long>(
                  server.runtime().requests_on_host()));
  return 0;
}
