// Programmable DMA engine + RDMA verbs timing models (§2.2.5, Figs 7-10).
//
// Blocking ops: the issuing core stalls for the full PCIe round trip
// (base + transfer time).  Non-blocking ops: the core only pays the
// command-post cost; the engine services the queue at its own bandwidth
// and runs a completion callback.  Scatter-gather aggregation is modeled
// by issuing one op for the combined size (implication I6).
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "nic/nic_config.h"
#include "sim/simulation.h"

namespace ipipe::nic {

class DmaEngine {
 public:
  DmaEngine(sim::Simulation& sim, const DmaTiming& timing)
      : sim_(sim), timing_(timing) {}

  /// Core-blocking read/write: returns the latency the caller must charge.
  [[nodiscard]] Ns blocking_read_latency(std::uint32_t bytes) const noexcept;
  [[nodiscard]] Ns blocking_write_latency(std::uint32_t bytes) const noexcept;

  /// Non-blocking op: returns the command-post cost to charge on the core
  /// now; `done` (optional) runs when the engine completes the transfer.
  Ns nonblocking_read(std::uint32_t bytes, std::function<void()> done = {});
  Ns nonblocking_write(std::uint32_t bytes, std::function<void()> done = {});

  [[nodiscard]] std::uint64_t ops_issued() const noexcept { return ops_; }
  [[nodiscard]] std::uint64_t bytes_moved() const noexcept { return bytes_; }
  /// Current queue occupancy (outstanding non-blocking ops).
  [[nodiscard]] std::uint32_t outstanding() const noexcept { return outstanding_; }
  [[nodiscard]] const DmaTiming& timing() const noexcept { return timing_; }

 private:
  Ns enqueue(std::uint32_t bytes, double gbps, std::function<void()> done);

  sim::Simulation& sim_;
  DmaTiming timing_;
  Ns engine_busy_until_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint32_t outstanding_ = 0;
};

/// RDMA one-sided verbs model (BlueField/Stingray host communication).
class RdmaModel {
 public:
  explicit RdmaModel(const RdmaTiming& timing) : timing_(timing) {}

  [[nodiscard]] Ns read_latency(std::uint32_t bytes) const noexcept {
    return transfer(bytes) + timing_.base + timing_.post_overhead;
  }
  [[nodiscard]] Ns write_latency(std::uint32_t bytes) const noexcept {
    // Writes complete slightly faster (no response payload).
    return transfer(bytes) + timing_.base + timing_.post_overhead / 2;
  }

 private:
  [[nodiscard]] Ns transfer(std::uint32_t bytes) const noexcept {
    return static_cast<Ns>(static_cast<double>(bytes) * 8.0 / timing_.gbps);
  }
  RdmaTiming timing_;
};

}  // namespace ipipe::nic
