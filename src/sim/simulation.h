// Discrete-event simulation engine.
//
// Every component of the testbed (NIC cores, hosts, links, switches,
// clients) is driven by events scheduled on a single `Simulation`.  Events
// at the same timestamp execute in scheduling (FIFO) order, which makes
// runs fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace ipipe::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] Ns now() const noexcept { return now_; }

  /// A callable view of the simulation clock, for components that need
  /// timestamps but must not depend on the engine (e.g. trace::Tracer).
  [[nodiscard]] std::function<Ns()> clock() const {
    return [this] { return now_; };
  }

  /// Schedule `fn` to run `delay` ns from now.  Returns a handle usable
  /// with `cancel`.
  EventId schedule(Ns delay, EventFn fn);

  /// Schedule `fn` at an absolute timestamp (must be >= now()).
  EventId schedule_at(Ns when, EventFn fn);

  /// Cancel a pending event.  Returns false if it already ran or was
  /// cancelled.  O(1): the event is tombstoned, not removed.
  bool cancel(EventId id) noexcept;

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first).  Returns the time at which the run stopped.
  Ns run(Ns until = ~Ns{0});

  /// Execute a single event.  Returns false when the queue is empty or the
  /// head event is beyond `until`.
  bool step(Ns until = ~Ns{0});

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Ns when;
    EventId id;  // also the FIFO tie-breaker
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  Ns now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;  // scheduled and neither run nor cancelled
};

/// A handle that re-arms a callback on a fixed period until stopped.
/// Useful for pollers (host runtime cores, statistics scrapers).
class PeriodicTask {
 public:
  PeriodicTask(Simulation& sim, Ns period, EventFn fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  void start() {
    running_ = true;
    arm();
  }
  void stop() noexcept { running_ = false; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void arm() {
    sim_.schedule(period_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }

  Simulation& sim_;
  Ns period_;
  EventFn fn_;
  bool running_ = false;
};

}  // namespace ipipe::sim
