// Distributed transaction actors (§4): optimistic concurrency control
// with two-phase commit, following FaSST/TAPIR-style designs.
//
//   * CoordinatorActor — drives the 4-phase protocol, NIC-side; keeps the
//     coordinator log in a DMO-backed append region and offloads
//     checkpointing to the host-pinned LogActor.
//   * ParticipantActor — versioned key-value store (extendible DMO hash
//     table) with record locks, NIC-side.
//   * LogActor         — persistent logging / checkpointing, host-pinned.
//
// Protocol (§4 "Distributed Transactions"):
//   Phase 1 read+lock: read R, lock W (abort if anything is locked)
//   Phase 2 validate:  re-check R versions (abort on change/lock)
//   Phase 3 log:       append key/value/version to the coordinator log
//   Phase 4 commit:    participants apply W, bump versions, unlock
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "apps/common/wire.h"
#include "apps/dt/hashtable.h"
#include "ipipe/runtime.h"

namespace ipipe::dt {

enum MsgType : std::uint16_t {
  kTxnRequest = 200,   // client -> coordinator
  kTxnReply = 201,     // coordinator -> client
  kRead = 210,         // coordinator -> participant (phase 1)
  kReadReply = 211,
  kLock = 212,         // coordinator -> participant (phase 1)
  kLockReply = 213,
  kValidate = 214,     // coordinator -> participant (phase 2)
  kValidateReply = 215,
  kCommit = 216,       // coordinator -> participant (phase 4)
  kCommitAck = 217,
  kAbortUnlock = 218,  // coordinator -> participant (abort path)
  kAbortAck = 219,     // participant -> coordinator (abort acknowledged)
  kLogAppend = 220,    // coordinator -> log actor (phase 3)
  kLogAck = 221,
  kLogCheckpoint = 222,
  // crash recovery (coordinator restart)
  kLogReplayReq = 223,  // coordinator -> log: stream unresolved records
  kLogReplay = 224,     // log -> coordinator: one in-doubt txn (0 = done)
  kLogResolve = 225,    // coordinator -> log: txn durable everywhere, drop
  kRecoverLocks = 226,  // coordinator -> participants: active txn set
  kRecoverAck = 227,    // participant -> coordinator
  // self-timers (never cross the wire)
  kTxnTick = 240,  // coordinator retransmit sweep
};

enum class TxnStatus : std::uint8_t {
  kCommitted = 0,
  kAbortedLocked = 1,
  kAbortedValidation = 2,
  kError = 3,
};

struct TxnRead {
  netsim::NodeId node = 0;
  std::string key;
};
struct TxnWrite {
  netsim::NodeId node = 0;
  std::string key;
  std::vector<std::uint8_t> value;
};

/// Client transaction request: read set + write set.
struct TxnRequest {
  std::vector<TxnRead> reads;
  std::vector<TxnWrite> writes;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<TxnRequest> decode(
      std::span<const std::uint8_t> data);
};

struct TxnReply {
  TxnStatus status = TxnStatus::kCommitted;
  std::vector<std::vector<std::uint8_t>> read_values;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<TxnReply> decode(
      std::span<const std::uint8_t> data);
};

/// Ground-truth hooks for the verification harness (src/verify): what
/// the protocol actually did, beyond what clients can see.  All hooks
/// are optional; unset ones cost nothing.
struct ParticipantObserver {
  /// A write became visible in the store (version installed).
  std::function<void(Ns at, std::uint64_t txn, const std::string& key,
                     std::uint32_t version,
                     std::span<const std::uint8_t> value)>
      on_apply;
  /// A phase-1 read was served (version/value as returned; ok=false means
  /// the record was locked and the txn will abort).
  std::function<void(Ns at, std::uint64_t txn, const std::string& key,
                     std::uint32_t version,
                     std::span<const std::uint8_t> value, bool ok)>
      on_read;
  /// The store was wiped by a node crash: versions restart from zero, so
  /// checkers must segment version chains at these instants.
  std::function<void(Ns at)> on_wipe;
};

class ParticipantActor final : public Actor {
 public:
  ParticipantActor() : Actor("dt-participant") {}

  void init(ActorEnv& env) override { store_.create(env, 4); }
  /// Node crash: the DMO-backed store and every lock die with it.
  void reset(ActorEnv& env) override {
    store_ = DmoHashTable{};
    locks_.clear();
    if (observer_.on_wipe) observer_.on_wipe(env.now());
  }
  void handle(ActorEnv& env, const netsim::Packet& req) override;

  [[nodiscard]] std::uint64_t region_bytes() const override { return 16 * MiB; }
  [[nodiscard]] const DmoHashTable& store() const noexcept { return store_; }
  /// Direct (test) access for seeding data.
  DmoHashTable& store_mut() noexcept { return store_; }
  /// Records currently lock-held (the "no dangling locks" invariant).
  [[nodiscard]] std::size_t locked_count() const noexcept {
    return locks_.size();
  }
  void set_observer(ParticipantObserver obs) { observer_ = std::move(obs); }

 private:
  /// Who holds the lock on a key: coordinator node + its txn id + the
  /// version reported at lock time (for idempotent re-locks).
  struct LockOwner {
    netsim::NodeId node = 0;
    std::uint64_t txn = 0;
    std::uint32_t version = 0;
  };

  DmoHashTable store_;
  std::map<std::string, LockOwner> locks_;
  ParticipantObserver observer_;
};

class LogActor final : public Actor {
 public:
  LogActor() : Actor("dt-log") {}

  [[nodiscard]] bool host_pinned() const override { return true; }
  // Host-pinned = persistent storage: retained records deliberately
  // survive node crashes (no reset override).
  void handle(ActorEnv& env, const netsim::Packet& req) override;

  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }
  [[nodiscard]] std::uint64_t checkpoints() const noexcept { return checkpoints_; }
  /// Logged-but-unresolved transactions (in-doubt after a crash).
  [[nodiscard]] std::size_t unresolved() const noexcept {
    return records_.size();
  }

 private:
  std::uint64_t appended_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t checkpoints_ = 0;
  /// txn id -> raw kLogAppend payload, retained until kLogResolve so a
  /// restarted coordinator can replay its in-doubt transactions.
  std::map<std::uint64_t, std::vector<std::uint8_t>> records_;
};

/// Recovery / retransmission knobs for the coordinator.  Disabled by
/// default: legacy deployments keep fire-and-forget semantics with no
/// timers.
struct DtRecoveryParams {
  bool enabled = false;
  Ns retry_period = msec(5);   ///< sweep-timer granularity
  Ns retry_timeout = msec(2);  ///< per-phase silence before retransmit
  /// Phase 1/2 retransmits before giving up and aborting (commit and
  /// abort phases retransmit forever — the 2PC decision is final).
  unsigned max_phase12_retries = 8;
  /// Every node hosting a participant (for the recover-locks broadcast).
  std::vector<netsim::NodeId> cluster;

  /// Fault injection for the verification harness' mutation self-test:
  /// the abort path sends kCommit for its first locked write instead of
  /// kAbortUnlock, making an aborted transaction's write visible — the
  /// lost-abort bug the atomicity checker must catch.  Never enable
  /// outside verify tests.
  bool inject_lost_abort = false;
};

/// Coordinator-side ground truth for the serializability checker: one
/// record per transaction at decision time, carrying the read set
/// (node/key/version/value as validated) and write set (node/key/value
/// and the version each commit installs).
struct CoordinatorObserver {
  struct Outcome {
    std::uint64_t txn_id = 0;
    std::uint64_t request_id = 0;
    TxnStatus status = TxnStatus::kError;
    bool recovered = false;  ///< rebuilt from the log after a crash
    Ns decided_at = 0;
    TxnRequest request;
    std::vector<std::uint32_t> read_versions;
    std::vector<std::vector<std::uint8_t>> read_values;
    std::vector<std::uint32_t> write_targets;  ///< versions installed
  };
  std::function<void(const Outcome&)> on_outcome;
};

class CoordinatorActor final : public Actor {
 public:
  /// `participant_actor` is the participant actor id (identical on all
  /// storage nodes); `log_actor` is the local host-pinned logger.
  CoordinatorActor(ActorId participant_actor, ActorId log_actor,
                   std::uint64_t log_limit_bytes = 1 * MiB,
                   DtRecoveryParams recovery = {})
      : Actor("dt-coordinator"),
        participant_(participant_actor),
        log_actor_(log_actor),
        log_limit_(log_limit_bytes),
        recovery_(std::move(recovery)) {}

  void init(ActorEnv& env) override;
  void reset(ActorEnv& env) override;
  void handle(ActorEnv& env, const netsim::Packet& req) override;

  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  [[nodiscard]] std::uint64_t aborted() const noexcept { return aborted_; }
  [[nodiscard]] std::uint64_t recovered_txns() const noexcept {
    return recovered_txns_;
  }
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] std::size_t in_flight() const noexcept { return txns_.size(); }
  void set_observer(CoordinatorObserver obs) { observer_ = std::move(obs); }

 private:
  enum class Phase : std::uint8_t {
    kReadLock = 1,
    kValidate = 2,
    kLog = 3,
    kCommit = 4,
    kAborting = 5,  ///< decision reached; unlocks retransmitted until acked
  };

  struct TxnState {
    TxnRequest request;
    netsim::Packet client;  // reply routing
    Phase phase = Phase::kReadLock;
    unsigned pending = 0;
    bool failed = false;
    bool recovered = false;  ///< replayed from the log: no client to answer
    bool replied = false;    ///< client already answered (abort drain)
    std::vector<std::uint32_t> read_versions;
    std::vector<std::vector<std::uint8_t>> read_values;
    std::vector<std::uint32_t> write_versions;
    /// Per-item completion for the current phase (phase 1: reads then
    /// writes; later phases: one flag per phase item).
    std::vector<std::uint8_t> done;
    unsigned locks_held = 0;
    unsigned retries = 0;
    Ns phase_started = 0;
    bool outcome_emitted = false;  ///< observer fired for this txn
  };

  void on_client(ActorEnv& env, const netsim::Packet& req);
  void on_read_reply(ActorEnv& env, const netsim::Packet& req);
  void on_lock_reply(ActorEnv& env, const netsim::Packet& req);
  void on_validate_reply(ActorEnv& env, const netsim::Packet& req);
  void on_log_ack(ActorEnv& env, const netsim::Packet& req);
  void on_commit_ack(ActorEnv& env, const netsim::Packet& req);
  void on_abort_ack(ActorEnv& env, const netsim::Packet& req);
  void on_log_replay(ActorEnv& env, const netsim::Packet& req);
  void on_recover_ack(ActorEnv& env, const netsim::Packet& req);
  void on_tick(ActorEnv& env);
  void phase1_maybe_done(ActorEnv& env, std::uint64_t txn_id);
  void begin_validate(ActorEnv& env, std::uint64_t txn_id, TxnState& txn);
  void begin_log(ActorEnv& env, std::uint64_t txn_id, TxnState& txn);
  void begin_commit(ActorEnv& env, std::uint64_t txn_id, TxnState& txn);
  void abort(ActorEnv& env, std::uint64_t txn_id, TxnState& txn,
             TxnStatus status);
  void reply_client(ActorEnv& env, TxnState& txn, TxnStatus status);
  void send_read(ActorEnv& env, std::uint64_t txn_id, const TxnState& txn,
                 std::size_t i);
  void send_lock(ActorEnv& env, std::uint64_t txn_id, const TxnState& txn,
                 std::size_t i);
  void send_validate(ActorEnv& env, std::uint64_t txn_id, const TxnState& txn,
                     std::size_t i);
  void send_commit(ActorEnv& env, std::uint64_t txn_id, const TxnState& txn,
                   std::size_t i);
  void send_unlock(ActorEnv& env, std::uint64_t txn_id, const TxnState& txn,
                   std::size_t i);
  void send_recover_locks(ActorEnv& env, netsim::NodeId node);
  void retransmit_txn(ActorEnv& env, std::uint64_t txn_id, TxnState& txn);
  void charge_coord(ActorEnv& env) const;
  void emit_outcome(ActorEnv& env, std::uint64_t txn_id, TxnState& txn,
                    TxnStatus status);

  ActorId participant_;
  ActorId log_actor_;
  std::uint64_t log_limit_;
  DtRecoveryParams recovery_;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t next_txn_ = 1;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t recovered_txns_ = 0;
  std::uint64_t retransmits_ = 0;
  // std::map: deterministic sweep order (chaos replay byte-compares).
  std::map<std::uint64_t, TxnState> txns_;

  // Recovery-in-progress state (coordinator restart).
  bool recovering_ = false;
  std::vector<std::uint64_t> recover_active_;
  std::set<netsim::NodeId> recover_pending_;

  // Client request dedup (request id -> cached reply / active txn).
  std::map<std::uint64_t, std::uint64_t> active_reqs_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> completed_reqs_;
  std::deque<std::uint64_t> completed_order_;  ///< bounded-cache eviction

  CoordinatorObserver observer_;
};

/// One node's DT deployment.
struct DtDeployment {
  ActorId participant = 0;
  ActorId coordinator = 0;
  ActorId log = 0;
};

/// Register participant + log (+ coordinator when `with_coordinator`) in a
/// fixed order so actor ids agree across nodes.
[[nodiscard]] DtDeployment deploy_dt(Runtime& rt, bool with_coordinator,
                                     DtRecoveryParams recovery = {});

}  // namespace ipipe::dt
