#include "apps/rkv/rkv_actors.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "apps/rkv/hot_cache.h"
#include "common/logging.h"
#include "ipipe/shard.h"

namespace ipipe::rkv {
namespace {

/// [op u8][ReplyTo][key][value] — the operation driven through Paxos and
/// applied to the memtable.
std::vector<std::uint8_t> encode_op(Op op, const ReplyTo& reply,
                                    std::string_view key,
                                    std::span<const std::uint8_t> value) {
  wire::Writer w;
  w.put(static_cast<std::uint8_t>(op));
  reply.encode(w);
  w.put_str(key);
  w.put_bytes(std::vector<std::uint8_t>(value.begin(), value.end()));
  return w.take();
}

struct DecodedOp {
  Op op = Op::kGet;
  ReplyTo reply;
  std::string key;
  std::vector<std::uint8_t> value;
};

std::optional<DecodedOp> decode_op(std::span<const std::uint8_t> data) {
  wire::Reader r(data);
  DecodedOp out;
  std::uint8_t op = 0;
  if (!r.get(op) || !ReplyTo::decode(r, out.reply) || !r.get_str(out.key) ||
      !r.get_bytes(out.value)) {
    return std::nullopt;
  }
  out.op = static_cast<Op>(op);
  return out;
}

ReplyTo reply_to_of(const netsim::Packet& req) {
  return ReplyTo{req.src, req.src_actor, req.request_id, req.created_at};
}

void send_client_reply(ActorEnv& env, const ReplyTo& to, Status status,
                       std::vector<std::uint8_t> value = {}) {
  const netsim::Packet fake = to.as_request();
  env.reply(fake, kClientReply, ClientReply{status, std::move(value)}.encode());
}

}  // namespace

// --------------------------------------------------------- ConsensusActor --

void ConsensusActor::charge_log_op(ActorEnv& env) const {
  // Protocol handling: header parse, log map walk, state update.
  env.compute(900);
  env.mem(std::max<std::uint64_t>(log_.size() * 96, 4096), 3);
}

void ConsensusActor::init(ActorEnv& env) {
  if (!params_.enable_failover) return;
  last_leader_contact_ = env.now();
  election_timeout_cur_ = draw_election_timeout();
  env.schedule_self(params_.heartbeat_period, kHbTick);
}

void ConsensusActor::reset(ActorEnv& env) {
  (void)env;
  log_.clear();
  req_slot_.clear();
  req_order_.clear();
  lease_granted_until_ = 0;
  // Shard config falls back to the deployment baseline; Op::kShardCfg
  // entries re-apply through catch-up and bring us forward again.
  epoch_ = params_.shard_epoch;
  num_shards_cfg_ = params_.num_shards;
  owned_.clear();
  owned_.insert(params_.owned_shards.begin(), params_.owned_shards.end());
  voters_.clear();
  peer_ack_.assign(params_.replicas.size(), 0);
  in_election_ = false;
  election_ballot_ = 0;
  next_slot_ = next_apply_ = chosen_ = 0;
  if (params_.enable_failover) {
    // A rebooted replica rejoins as a follower and catches up from the
    // live leader's heartbeats; claiming leadership from amnesia would
    // fork the log.
    leader_ = false;
    ballot_ = 0;
    promised_ = 0;
  } else {
    // Legacy static-leader deployments restart into their configured role.
    leader_ = params_.self_index == 0;
    ballot_ = leader_ ? params_.replicas.size() + params_.self_index : 0;
    promised_ = 0;
  }
}

void ConsensusActor::handle(ActorEnv& env, const netsim::Packet& req) {
  switch (req.msg_type) {
    case kClientPut:
    case kClientGet:
    case kClientDel:
      on_client(env, req);
      break;
    case kPaxosPrepare:
      on_prepare(env, req);
      break;
    case kPaxosPromise:
      on_promise(env, req);
      break;
    case kPaxosAccept:
      on_accept(env, req);
      break;
    case kPaxosAccepted:
      on_accepted(env, req);
      break;
    case kPaxosLearn:
      on_learn(env, req);
      break;
    case kCacheGet:
      on_cache_get(env, req);
      break;
    case kHeartbeat:
      on_heartbeat(env, req);
      break;
    case kHeartbeatAck:
      on_heartbeat_ack(env, req);
      break;
    case kCatchupReq:
      on_catchup_req(env, req);
      break;
    case kCatchupBatch:
      on_catchup_batch(env, req);
      break;
    case kHbTick:
      on_tick(env);
      break;
    case kElectTrigger:
      start_election(env);
      break;
    default:
      break;
  }
}

Ns ConsensusActor::draw_election_timeout() {
  const Ns lo = params_.election_timeout_min;
  const Ns hi = params_.election_timeout_max;
  if (hi <= lo) return lo;
  return lo + static_cast<Ns>(election_rng_.uniform_u64(
                  static_cast<std::uint64_t>(hi - lo)));
}

void ConsensusActor::on_tick(ActorEnv& env) {
  if (!params_.enable_failover) return;
  if (leader_) {
    send_heartbeats(env);
    redrive_stuck_slots(env);
  } else if (env.now() - last_leader_contact_ >= election_timeout_cur_) {
    start_election(env);
    // Re-draw the timeout before the next candidacy: two candidates that
    // split a vote back off by different (seeded) amounts and one of
    // them wins the retry.
    last_leader_contact_ = env.now();
    election_timeout_cur_ = draw_election_timeout();
  }
  env.schedule_self(params_.heartbeat_period, kHbTick);
}

void ConsensusActor::send_heartbeats(ActorEnv& env) {
  PaxosMsg hb;
  hb.ballot = ballot_;
  hb.slot = next_apply_;  // commit watermark: every slot below is chosen
  broadcast(env, kHeartbeat, hb);
}

void ConsensusActor::redrive_stuck_slots(ActorEnv& env) {
  // Liveness: an accept round whose frames all die (lossy link, NIC
  // buffer wipe) leaves the slot unchosen with no retransmit — client
  // retries can't help because dedup pins them to the stuck slot and
  // waits for the apply path, and next_apply_ can never pass it.
  // Re-propose everything unchosen below the frontier at the leader's
  // heartbeat cadence: same-ballot phase-2 re-sends are idempotent and
  // ack_mask dedups repeat replies.
  for (std::uint64_t s = next_apply_; s < next_slot_; ++s) {
    const auto it = log_.find(s);
    if (it == log_.end() || !it->second.chosen) propose_slot(env, s);
  }
}

void ConsensusActor::on_heartbeat(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  const auto msg = PaxosMsg::decode(req.payload);
  if (!msg) return;
  // A stale leader's heartbeat is ignored; it deposes itself when the
  // real leader's (higher-ballot) heartbeat reaches it.
  if (msg->ballot < promised_) return;
  promised_ = msg->ballot;
  if (leader_ && msg->ballot > ballot_) leader_ = false;
  in_election_ = false;
  last_leader_contact_ = env.now();
  // Ack the heartbeat: the leader's read lease is a majority of these
  // acks younger than election_timeout_min.
  PaxosMsg ack;
  ack.ballot = msg->ballot;
  ack.slot = next_apply_;
  env.reply(req, kHeartbeatAck, ack.encode());
  // The leader's chosen prefix extends past ours: pull the gap.
  if (msg->slot > next_apply_) {
    PaxosMsg ask;
    ask.ballot = msg->ballot;
    ask.slot = next_apply_;
    env.reply(req, kCatchupReq, ask.encode());
  }
}

void ConsensusActor::on_heartbeat_ack(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  const auto msg = PaxosMsg::decode(req.payload);
  if (!msg || !leader_ || msg->ballot != ballot_) return;  // stale ack
  for (std::size_t i = 0; i < params_.replicas.size(); ++i) {
    if (params_.replicas[i] == req.src) {
      peer_ack_[i] = env.now();
      break;
    }
  }
  maybe_grant_lease(env);
}

bool ConsensusActor::owns_key(std::string_view key) const {
  if (num_shards_cfg_ == 0) return true;
  return owned_.count(shard::shard_of_key(key, num_shards_cfg_)) != 0;
}

void ConsensusActor::remember_request(std::uint64_t request_id,
                                      std::uint64_t slot) {
  if (request_id == 0) return;
  const auto [it, inserted] = req_slot_.emplace(request_id, slot);
  if (!inserted) {
    it->second = slot;
    return;
  }
  req_order_.push_back(request_id);
  if (params_.req_dedup_cap == 0) return;
  while (req_slot_.size() > params_.req_dedup_cap && !req_order_.empty()) {
    req_slot_.erase(req_order_.front());
    req_order_.pop_front();
  }
}

void ConsensusActor::maybe_grant_lease(ActorEnv& env) {
  if (cache_ == 0 || !leader_ || !params_.enable_failover ||
      !params_.read_lease) {
    return;
  }
  // Grant the cache serving rights until the latest instant at which
  // has_read_lease() would still hold with no further acks: the
  // majority'th-freshest ack plus the lease window.  Same safety
  // argument as leader reads — no new leader can be elected while a
  // majority's acks are that fresh.
  std::vector<Ns> acks;
  acks.reserve(peer_ack_.size());
  for (std::size_t i = 0; i < peer_ack_.size(); ++i) {
    acks.push_back(i == params_.self_index ? env.now() : peer_ack_[i]);
  }
  std::sort(acks.begin(), acks.end(), [](Ns a, Ns b) { return a > b; });
  const Ns base = acks[majority() - 1];
  if (base == 0) return;
  const Ns until = base + params_.election_timeout_min / 2;
  if (until <= lease_granted_until_) return;
  lease_granted_until_ = until;
  wire::Writer w;
  w.put(static_cast<std::uint64_t>(until));
  env.local_send(cache_, kLeaseGrant, w.take());
}

void ConsensusActor::on_cache_get(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  wire::Reader r(req.payload);
  ReplyTo reply;
  std::string key;
  if (!ReplyTo::decode(r, reply) || !r.get_str(key)) return;

  if (!owns_key(key)) {
    wire::Writer w;
    w.put(epoch_);
    send_client_reply(env, reply, Status::kWrongShard, w.take());
    return;
  }
  if (!params_.inject_stale_reads) {
    if (!leader_) {
      std::vector<std::uint8_t> hint;
      if (promised_ != 0) {
        hint.push_back(
            static_cast<std::uint8_t>(promised_ % params_.replicas.size()));
      }
      send_client_reply(env, reply, Status::kNotLeader, std::move(hint));
      return;
    }
    if (!has_read_lease(env.now())) {
      send_client_reply(env, reply, Status::kNotLeader);
      return;
    }
  }
  wire::Writer w;
  reply.encode(w);
  w.put_str(key);
  env.local_send(memtable_, kMemGet, w.take());
}

bool ConsensusActor::has_read_lease(Ns now) const {
  if (!params_.enable_failover || !params_.read_lease) return true;
  // A peer that acked within the last election_timeout_min cannot have
  // started an election yet, so no newer leader can exist while a
  // majority of acks is this fresh.  Half the timeout leaves generous
  // slack for the ack's one-way network delay (the follower reset its
  // election timer when it SENT the ack, not when we received it) while
  // still spanning more than one heartbeat period.
  const Ns window = params_.election_timeout_min / 2;
  unsigned fresh = 1;  // self
  for (std::size_t i = 0; i < peer_ack_.size(); ++i) {
    if (i == params_.self_index) continue;
    if (peer_ack_[i] != 0 && now - peer_ack_[i] <= window) ++fresh;
  }
  return fresh >= majority();
}

void ConsensusActor::on_catchup_req(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  const auto msg = PaxosMsg::decode(req.payload);
  if (!msg) return;
  CatchupMsg batch;
  batch.watermark = next_apply_;
  std::uint64_t s = msg->slot;
  while (batch.entries.size() < params_.catchup_batch) {
    const auto it = log_.find(s);
    if (it == log_.end() || !it->second.chosen) break;
    batch.entries.push_back({s, it->second.value});
    ++s;
  }
  env.mem(std::max<std::uint64_t>(log_.size() * 96, 4096),
          batch.entries.size() + 1);
  env.reply(req, kCatchupBatch, batch.encode());
}

void ConsensusActor::on_catchup_batch(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  auto msg = CatchupMsg::decode(req.payload);
  if (!msg) return;
  const std::uint64_t before = next_apply_;
  for (auto& e : msg->entries) {
    learn_entry(e.slot, promised_, std::move(e.value));
  }
  apply_ready(env);
  // Still behind and making progress: chain the next request.
  if (msg->watermark > next_apply_ && next_apply_ > before) {
    PaxosMsg more;
    more.ballot = promised_;
    more.slot = next_apply_;
    env.reply(req, kCatchupReq, more.encode());
  }
}

void ConsensusActor::learn_entry(std::uint64_t slot, std::uint64_t ballot,
                                 std::vector<std::uint8_t> value) {
  LogEntry& entry = log_[slot];
  entry.value = std::move(value);
  entry.ballot = std::max(entry.ballot, ballot);
  if (!entry.chosen) {
    entry.chosen = true;
    ++chosen_;
  }
  next_slot_ = std::max(next_slot_, slot + 1);
}

void ConsensusActor::on_client(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  const auto creq = ClientReq::decode(req.payload);
  if (!creq) return;
  const ReplyTo reply = reply_to_of(req);

  // Shard ownership gate (data ops only — config ops carry no key).
  // A stale-routed client learns our epoch and re-resolves.
  if (creq->op != Op::kShardCfg && !owns_key(creq->key)) {
    wire::Writer w;
    w.put(epoch_);
    send_client_reply(env, reply, Status::kWrongShard, w.take());
    return;
  }

  if (creq->op == Op::kGet && params_.inject_stale_reads) {
    // Injected bug (verification self-test): serve the read from the
    // local applied state with no leadership, lease, or catch-up check.
    wire::Writer w;
    reply.encode(w);
    w.put_str(creq->key);
    env.local_send(memtable_, kMemGet, w.take());
    return;
  }

  if (!leader_) {
    // Hint the last known leader (ballots are partitioned by replica
    // index) so a retrying client can re-target without probing.
    std::vector<std::uint8_t> hint;
    if (promised_ != 0) {
      hint.push_back(
          static_cast<std::uint8_t>(promised_ % params_.replicas.size()));
    }
    send_client_reply(env, reply, Status::kNotLeader, std::move(hint));
    return;
  }

  if (creq->op == Op::kGet) {
    if (!has_read_lease(env.now())) {
      // Possibly-deposed leader (e.g. stranded in a minority partition):
      // serving from the applied state could return stale data.  No hint
      // — we believe we ARE the leader; the client should re-probe.
      send_client_reply(env, reply, Status::kNotLeader);
      return;
    }
    // Linearizable read served by the leaseholder's applied state.
    wire::Writer w;
    reply.encode(w);
    w.put_str(creq->key);
    env.local_send(memtable_, kMemGet, w.take());
    return;
  }

  // Dedup: a retransmitted write that is already in the log must not
  // consume a second slot (exactly-once apply).
  if (req.request_id != 0) {
    const auto it = req_slot_.find(req.request_id);
    if (it != req_slot_.end()) {
      const auto ls = log_.find(it->second);
      if (ls != log_.end() && ls->second.applied) {
        send_client_reply(env, reply, Status::kOk);
      }
      // else: still being driven — the apply path will reply.
      return;
    }
  }

  // Drive the write through a Paxos instance.
  const std::uint64_t slot = next_slot_++;
  log_[slot].value = encode_op(creq->op, reply, creq->key, creq->value);
  remember_request(req.request_id, slot);
  propose_slot(env, slot);
}

void ConsensusActor::propose_slot(ActorEnv& env, std::uint64_t slot) {
  LogEntry& entry = log_[slot];
  entry.ballot = ballot_;
  entry.ack_mask = 1u << params_.self_index;  // self
  PaxosMsg accept;
  accept.ballot = ballot_;
  accept.slot = slot;
  accept.value = entry.value;  // may be empty: a hole-filling no-op
  broadcast(env, kPaxosAccept, accept);

  if (static_cast<unsigned>(std::popcount(entry.ack_mask)) >= majority()) {
    entry.chosen = true;  // single-replica degenerate case
    ++chosen_;
    apply_ready(env);
  }
}

void ConsensusActor::broadcast(ActorEnv& env, std::uint16_t type,
                               const PaxosMsg& msg) {
  // Replicas deploy their actors in the same order, so the consensus
  // actor id is identical cluster-wide; our own id is the default peer
  // address (§5.1 deployment symmetry).
  const ActorId peer =
      params_.peer_consensus_actor != 0 ? params_.peer_consensus_actor : id();
  for (std::size_t i = 0; i < params_.replicas.size(); ++i) {
    if (i == params_.self_index) continue;
    env.send(params_.replicas[i], peer, type, msg.encode());
  }
}

void ConsensusActor::on_prepare(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  const auto msg = PaxosMsg::decode(req.payload);
  if (!msg) return;
  if (msg->ballot <= promised_) return;  // stale candidacy: no vote
  promised_ = msg->ballot;
  leader_ = false;
  in_election_ = false;

  // Phase 1b: report every value accepted at or above the candidate's
  // watermark (msg->slot) so chosen-but-unlearned values survive the
  // leader change.
  PromiseMsg promise;
  promise.ballot = msg->ballot;
  promise.next_slot = next_slot_;
  for (auto it = log_.lower_bound(msg->slot); it != log_.end(); ++it) {
    if (it->second.value.empty() && !it->second.chosen) continue;
    promise.accepted.push_back(
        {it->first, it->second.ballot, it->second.value});
  }
  env.mem(std::max<std::uint64_t>(log_.size() * 96, 4096),
          promise.accepted.size() + 1);
  env.reply(req, kPaxosPromise, promise.encode());
}

void ConsensusActor::on_promise(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  auto msg = PromiseMsg::decode(req.payload);
  if (!msg) return;
  // Votes for an earlier candidacy (stale ballot) and duplicate votes
  // from the same replica must not count toward the majority.
  if (!in_election_ || leader_ || msg->ballot != election_ballot_) return;
  if (!voters_.insert(req.src).second) return;

  next_slot_ = std::max(next_slot_, msg->next_slot);
  // Adopt the highest-ballot accepted value per slot.
  for (auto& e : msg->accepted) {
    LogEntry& entry = log_[e.slot];
    next_slot_ = std::max(next_slot_, e.slot + 1);
    if (entry.chosen) continue;
    if (entry.value.empty() || e.ballot >= entry.ballot) {
      entry.ballot = e.ballot;
      entry.value = std::move(e.value);
    }
  }
  if (voters_.size() + 1 >= majority()) become_leader(env);
}

void ConsensusActor::become_leader(ActorEnv& env) {
  leader_ = true;
  in_election_ = false;
  LOG_INFO("rkv: node becomes Paxos leader (ballot %llu)",
           static_cast<unsigned long long>(ballot_));
  // Re-drive every unchosen slot below the frontier under the new
  // ballot; untouched holes become no-ops so the apply prefix can
  // advance past them.
  for (std::uint64_t s = next_apply_; s < next_slot_; ++s) {
    if (log_[s].chosen) continue;
    propose_slot(env, s);
  }
  if (params_.enable_failover) send_heartbeats(env);
}

void ConsensusActor::on_accept(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  const auto msg = PaxosMsg::decode(req.payload);
  if (!msg) return;
  if (msg->ballot < promised_) return;  // stale leader
  promised_ = msg->ballot;
  if (leader_ && msg->ballot > ballot_) leader_ = false;  // deposed
  in_election_ = false;
  if (params_.enable_failover) last_leader_contact_ = env.now();

  LogEntry& entry = log_[msg->slot];
  if (!entry.chosen) {
    entry.ballot = msg->ballot;
    entry.value = msg->value;
  }
  next_slot_ = std::max(next_slot_, msg->slot + 1);

  PaxosMsg ack;
  ack.ballot = msg->ballot;
  ack.slot = msg->slot;
  env.reply(req, kPaxosAccepted, ack.encode());
}

void ConsensusActor::on_accepted(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  const auto msg = PaxosMsg::decode(req.payload);
  if (!msg || !leader_ || msg->ballot != ballot_) return;
  const auto it = log_.find(msg->slot);
  if (it == log_.end() || it->second.chosen) return;
  std::size_t idx = params_.replicas.size();
  for (std::size_t i = 0; i < params_.replicas.size(); ++i) {
    if (params_.replicas[i] == req.src) {
      idx = i;
      break;
    }
  }
  if (idx >= params_.replicas.size()) return;  // not a group member
  it->second.ack_mask |= 1u << idx;
  if (static_cast<unsigned>(std::popcount(it->second.ack_mask)) >=
      majority()) {
    it->second.chosen = true;
    ++chosen_;
    PaxosMsg learn;
    learn.ballot = ballot_;
    learn.slot = msg->slot;
    learn.value = it->second.value;
    broadcast(env, kPaxosLearn, learn);
    apply_ready(env);
  }
}

void ConsensusActor::on_learn(ActorEnv& env, const netsim::Packet& req) {
  charge_log_op(env);
  auto msg = PaxosMsg::decode(req.payload);
  if (!msg) return;
  learn_entry(msg->slot, msg->ballot, std::move(msg->value));
  apply_ready(env);
}

void ConsensusActor::start_election(ActorEnv& env) {
  charge_log_op(env);
  // Two-phase Paxos leader election: pick a ballot above anything seen.
  ballot_ = (std::max(promised_, ballot_) / params_.replicas.size() + 1) *
                params_.replicas.size() +
            params_.self_index;
  promised_ = ballot_;
  in_election_ = true;
  election_ballot_ = ballot_;
  voters_.clear();
  ++elections_started_;
  PaxosMsg prep;
  prep.ballot = ballot_;
  prep.slot = next_apply_;  // our applied watermark: report entries above
  broadcast(env, kPaxosPrepare, prep);
  if (params_.replicas.size() == 1) become_leader(env);
}

void ConsensusActor::apply_ready(ActorEnv& env) {
  // Apply chosen entries in slot order to the local replicated state
  // machine (the memtable actor).  Only the entry's reply routing on the
  // leader triggers a client reply.
  while (true) {
    const auto it = log_.find(next_apply_);
    if (it == log_.end() || !it->second.chosen || it->second.applied) break;
    it->second.applied = true;
    const std::uint64_t slot = next_apply_;
    ++next_apply_;

    auto op = decode_op(it->second.value);
    if (!op) continue;
    // Record the request -> slot mapping on every replica (before the
    // follower blanks the route) so whoever leads next dedups retries.
    remember_request(op->reply.request_id, slot);
    if (!leader_) {
      // Follower applies without replying: blank out the reply route.
      op->reply = ReplyTo{};
    }

    if (op->op == Op::kShardCfg) {
      // Shard-ownership change, applied by every replica in log order —
      // catch-up and leader changes replay it, so the whole group
      // converges no matter who serves next.
      const auto view = ShardView::decode(op->value);
      if (view && view->epoch >= epoch_) {
        epoch_ = view->epoch;
        num_shards_cfg_ = view->num_shards;
        owned_.clear();
        owned_.insert(view->owned.begin(), view->owned.end());
        if (cache_ != 0) env.local_send(cache_, kShardUpdate, op->value);
      }
      if (op->reply.node != 0 || op->reply.request_id != 0) {
        send_client_reply(env, op->reply, Status::kOk);
      }
      continue;  // config never touches the memtable
    }

    if (cache_ != 0 && (op->op == Op::kPut || op->op == Op::kDel)) {
      // Write-through invalidation BEFORE the memtable apply that acks
      // the client: FIFO mailboxes then guarantee any read issued after
      // the ack sees this update first (never-stale contract).
      wire::Writer inval;
      inval.put(static_cast<std::uint8_t>(op->op));
      inval.put_str(op->key);
      inval.put_bytes(op->value);
      env.local_send(cache_, kCacheInval, inval.take());
    }

    wire::Writer w;
    w.put(static_cast<std::uint8_t>(op->op));
    op->reply.encode(w);
    w.put_str(op->key);
    w.put_bytes(op->value);
    env.local_send(memtable_, kApplyOp, w.take());
  }
}

// --------------------------------------------------------- MemtableActor --

void MemtableActor::handle(ActorEnv& env, const netsim::Packet& req) {
  if (req.msg_type == kApplyOp) {
    auto op = decode_op(req.payload);
    if (!op) return;
    const bool tombstone = op->op == Op::kDel;
    env.compute(400);
    list_.insert(env, op->key, op->value, tombstone);
    if (op->reply.node != 0 || op->reply.request_id != 0) {
      send_client_reply(env, op->reply, Status::kOk);
    }
    if (list_.value_bytes() + list_.size() * 128 >
        params_.memtable_flush_bytes) {
      flush(env);
    }
    return;
  }

  if (req.msg_type == kMemGet) {
    wire::Reader r(req.payload);
    ReplyTo reply;
    std::string key;
    if (!ReplyTo::decode(r, reply) || !r.get_str(key)) return;
    env.compute(300);
    const auto result = list_.get(env, key);
    if (result) {
      if (result->tombstone) {
        send_client_reply(env, reply, Status::kNotFound);
      } else {
        send_client_reply(env, reply, Status::kOk, result->value);
      }
      return;
    }
    // Miss: forward to the SSTable read actor on the host.
    wire::Writer w;
    reply.encode(w);
    w.put_str(key);
    env.local_send(sst_read_, kSstGet, w.take());
    return;
  }
}

void MemtableActor::flush(ActorEnv& env) {
  ++flushes_;
  auto entries = list_.scan_all(env);
  wire::Writer w;
  w.put(static_cast<std::uint32_t>(entries.size()));
  for (auto& [key, value, tombstone] : entries) {
    w.put(static_cast<std::uint8_t>(tombstone ? 1 : 0));
    w.put_str(key);
    w.put_bytes(value);
  }
  env.compute(static_cast<double>(entries.size()) * 50.0);
  env.local_send(compaction_, kFlushBatch, w.take());
  list_.clear(env);
}

// ----------------------------------------------------------- SstReadActor --

void SstReadActor::handle(ActorEnv& env, const netsim::Packet& req) {
  if (req.msg_type != kSstGet) return;
  wire::Reader r(req.payload);
  ReplyTo reply;
  std::string key;
  if (!ReplyTo::decode(r, reply) || !r.get_str(key)) return;

  LsmTree::GetStats stats;
  const auto value = lsm_->get(key, &stats);
  // Binary-search probes over host-resident tables + storage access tax.
  env.mem(std::max<std::uint64_t>(lsm_->total_bytes(), 4096),
          stats.probes + 2 * stats.tables_probed);
  env.compute(800);
  if (value) {
    send_client_reply(env, reply, Status::kOk, *value);
  } else {
    send_client_reply(env, reply, Status::kNotFound);
  }
}

// -------------------------------------------------------- CompactionActor --

void CompactionActor::handle(ActorEnv& env, const netsim::Packet& req) {
  if (req.msg_type != kFlushBatch) return;
  ++batches_;
  wire::Reader r(req.payload);
  std::uint32_t n = 0;
  if (!r.get(n)) return;
  std::vector<SstEntry> entries;
  entries.reserve(n);
  std::uint64_t bytes = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t tombstone = 0;
    SstEntry e;
    if (!r.get(tombstone) || !r.get_str(e.key) || !r.get_bytes(e.value)) break;
    e.tombstone = tombstone != 0;
    bytes += e.key.size() + e.value.size();
    entries.push_back(std::move(e));
  }
  std::sort(entries.begin(), entries.end(),
            [](const SstEntry& a, const SstEntry& b) { return a.key < b.key; });
  // Keep only the newest duplicate (batch is scan order = sorted unique
  // already, but be safe).
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const SstEntry& a, const SstEntry& b) {
                              return a.key == b.key;
                            }),
                entries.end());

  env.stream(bytes + 1, bytes);
  env.compute(static_cast<double>(n) * 60.0);
  lsm_->add_l0(std::move(entries));
  const std::uint64_t merged = lsm_->maybe_compact();
  if (merged > 0) {
    env.stream(merged, merged);  // sequential merge I/O
    env.compute(static_cast<double>(merged) * 0.5);
  }
}

// ------------------------------------------------------------- deployment --

RkvDeployment deploy_rkv(Runtime& rt, RkvParams params) {
  RkvDeployment d;
  d.lsm = std::make_shared<LsmTree>();

  auto sst = std::make_unique<SstReadActor>(d.lsm);
  auto compact = std::make_unique<CompactionActor>(d.lsm);
  d.sst_read = rt.register_actor(std::move(sst), ActorLoc::kHost);
  d.compaction = rt.register_actor(std::move(compact), ActorLoc::kHost);

  auto memtable =
      std::make_unique<MemtableActor>(params, d.sst_read, d.compaction);
  d.memtable = rt.register_actor(std::move(memtable));

  auto consensus = std::make_unique<ConsensusActor>(params, d.memtable);
  ConsensusActor* cons = consensus.get();
  d.consensus = rt.register_actor(std::move(consensus));
  if (params.peer_consensus_actor != 0) {
    assert(params.peer_consensus_actor == d.consensus &&
           "deploy order must match across replicas");
  }

  if (params.enable_hot_cache) {
    // Registered last so legacy deployments keep their actor ids; wired
    // to consensus both ways before any traffic can arrive.
    HotCacheParams cp;
    cp.buckets = params.cache_buckets;
    cp.capacity_bytes = params.cache_capacity_bytes;
    cp.require_lease = params.enable_failover && params.read_lease;
    cp.num_shards = params.num_shards;
    cp.epoch = params.shard_epoch;
    cp.owned_shards = params.owned_shards;
    cp.inject_stale_cache = params.inject_stale_cache;
    auto cache = std::make_unique<HotKeyCacheActor>(std::move(cp));
    d.cache = cache.get();
    d.hot_cache = rt.register_actor(std::move(cache));
    d.cache->set_consensus(d.consensus);
    cons->set_cache_actor(d.hot_cache);
  }
  return d;
}

}  // namespace ipipe::rkv
