# Empty dependencies file for fig14_15_latency_tput.
# This may be replaced when dependencies are built.
