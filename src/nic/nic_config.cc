#include "nic/nic_config.h"

namespace ipipe::nic {

NicConfig liquidio_cn2350() {
  NicConfig cfg;
  cfg.name = "LiquidIOII CN2350";
  cfg.path = NicPath::kOnPath;
  cfg.cores = 12;
  cfg.freq_ghz = 1.2;
  cfg.link_gbps = 10.0;
  cfg.l1 = {32 * KiB, 8.3};
  cfg.l2 = {4 * MiB, 55.8};
  cfg.dram = {4 * GiB, 115.0};
  cfg.cache_line = 128;
  cfg.scratchpad_bytes = 54 * 128;  // 54 cache lines of scratchpad (§2.2.4)
  cfg.forwarding = {1885.0, 1.1};   // Fig. 2 calibration (+15ns TM pop)
  cfg.max_pps = 12e6;
  cfg.has_hw_traffic_manager = true;
  cfg.exposes_rdma = false;
  cfg.dma = DmaTiming{};  // Fig. 7/8 calibration (defaults)
  return cfg;
}

NicConfig liquidio_cn2360() {
  NicConfig cfg = liquidio_cn2350();
  cfg.name = "LiquidIOII CN2360";
  cfg.cores = 16;
  cfg.freq_ghz = 1.5;
  cfg.link_gbps = 25.0;
  // Same OCTEON microarchitecture at 1.5/1.2x clock.
  cfg.forwarding = {1508.0, 0.88};
  cfg.max_pps = 16e6;
  return cfg;
}

NicConfig bluefield_1m332a() {
  NicConfig cfg;
  cfg.name = "BlueField 1M332A";
  cfg.path = NicPath::kOffPath;
  cfg.cores = 8;
  cfg.freq_ghz = 0.8;
  cfg.link_gbps = 25.0;
  cfg.l1 = {32 * KiB, 5.0};
  cfg.l2 = {1 * MiB, 25.6};
  cfg.dram = {16 * GiB, 132.0};
  cfg.cache_line = 64;
  cfg.forwarding = {800.0, 0.42};  // + software shuffle dequeue
  cfg.max_pps = 14e6;
  cfg.has_hw_traffic_manager = false;
  cfg.exposes_rdma = true;
  cfg.rdma = RdmaTiming{1900, 16.0, 350};  // Fig. 9/10 calibration
  // Full-OS card; send/recv runs over DPDK-class software (Fig. 6).
  cfg.nstack_base_ns = 1400.0;
  cfg.nstack_per_byte_ns = 0.7;
  return cfg;
}

NicConfig stingray_ps225() {
  NicConfig cfg;
  cfg.name = "Stingray PS225";
  cfg.path = NicPath::kOffPath;
  cfg.cores = 8;
  cfg.freq_ghz = 3.0;
  cfg.link_gbps = 25.0;
  cfg.l1 = {32 * KiB, 1.3};
  cfg.l2 = {16 * MiB, 25.1};
  cfg.dram = {8 * GiB, 85.3};
  cfg.cache_line = 64;
  cfg.forwarding = {60.0, 0.08};   // Fig. 3 calibration (+180ns shuffle)
  cfg.max_pps = 18e6;              // 128B cannot reach line rate (Fig. 3)
  cfg.has_hw_traffic_manager = false;
  cfg.exposes_rdma = true;
  cfg.rdma = RdmaTiming{1750, 18.0, 300};
  cfg.nstack_base_ns = 900.0;
  cfg.nstack_per_byte_ns = 0.5;
  return cfg;
}

NicConfig intel_xl710() {
  NicConfig cfg;
  cfg.name = "Intel XL710";
  cfg.path = NicPath::kOffPath;
  cfg.cores = 0;  // no programmable cores: pure host NIC
  cfg.freq_ghz = 1.0;
  cfg.link_gbps = 10.0;
  cfg.max_pps = 30e6;
  cfg.has_hw_traffic_manager = false;
  return cfg;
}

NicConfig intel_xxv710() {
  NicConfig cfg = intel_xl710();
  cfg.name = "Intel XXV710-DA2";
  cfg.link_gbps = 25.0;
  cfg.max_pps = 45e6;
  return cfg;
}

std::vector<NicConfig> smartnic_presets() {
  return {liquidio_cn2350(), liquidio_cn2360(), bluefield_1m332a(),
          stingray_ps225()};
}

}  // namespace ipipe::nic
