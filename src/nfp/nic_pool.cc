#include "nfp/nic_pool.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

#include "common/rng.h"
#include "netsim/packet.h"
#include "nic/accelerator.h"

namespace ipipe::nfp {
namespace {

/// Offline StageCtx pricing cost hooks against one NicConfig.  Emitted
/// packets are discarded (the meter measures processing cost, not
/// transport); time advances with the charges plus a fixed inter-packet
/// gap so time-dependent stages (token refill) behave realistically.
class CostMeter final : public StageCtx {
 public:
  explicit CostMeter(const nic::NicConfig& cfg) : cfg_(cfg), rng_(0xC057ULL) {}

  [[nodiscard]] Ns now() const override { return now_; }
  [[nodiscard]] Rng& rng() override { return rng_; }

  void charge(Ns t) override { acc_ += t; }
  void compute(double units) override {
    // Same conversion the NIC-side ActorEnv uses (IPipeConfig default
    // achieved IPC for the wimpy in-order cores).
    acc_ += static_cast<Ns>(units / (kNicIpc * cfg_.freq_ghz));
  }
  void mem(std::uint64_t ws, std::uint64_t n) override {
    // Resolve the working set against the memory hierarchy: dependent
    // random accesses pay the latency of the smallest level they fit in.
    double lat = cfg_.dram.latency_ns;
    if (ws <= cfg_.l1.capacity_bytes) {
      lat = cfg_.l1.latency_ns;
    } else if (ws <= cfg_.l2.capacity_bytes) {
      lat = cfg_.l2.latency_ns;
    }
    acc_ += static_cast<Ns>(lat * static_cast<double>(n));
  }
  void accel(nic::AccelKind kind, std::uint32_t bytes,
             std::uint32_t batch) override {
    // Per-item amortized engine cost; the bank timings are the fitted
    // Table-3 values (per-config engine banks live on NicModel, which an
    // offline meter deliberately does not instantiate).
    acc_ += static_cast<Ns>(bank_.per_item_us(kind, bytes, batch) * 1000.0);
  }
  [[nodiscard]] netsim::PacketPtr clone(const netsim::Packet& src) override {
    return netsim::PacketPtr(new netsim::Packet(src),
                             netsim::PacketDeleter{nullptr});
  }

  void advance(Ns gap) { now_ += gap; }
  [[nodiscard]] Ns consumed() const noexcept { return acc_; }

 protected:
  void do_emit(netsim::PacketPtr pkt) override { pkt.reset(); }

 private:
  static constexpr double kNicIpc = 1.2;  // IPipeConfig default nic_ipc

  const nic::NicConfig& cfg_;
  nic::AcceleratorBank bank_;
  Rng rng_;
  Ns now_ = 1;
  Ns acc_ = 0;
};

/// Deterministic synthetic packet `i` of the measurement stream: a small
/// set of flows, mixed frame sizes, sequence ids 1..n (what stages see
/// in production).
netsim::PacketPtr synth_packet(std::size_t i) {
  auto pkt = netsim::alloc_packet();
  pkt->src = 1000;
  pkt->dst = 0;
  pkt->src_actor = 7;
  pkt->msg_type = kNfData;
  pkt->flow = static_cast<std::uint32_t>(i % 16);
  pkt->request_id = static_cast<std::uint64_t>(i + 1);
  pkt->frame_size = (i % 4 == 0) ? netsim::kMtuFrameSize : 512;
  pkt->payload.assign(64, static_cast<std::uint8_t>(i));
  return pkt;
}

}  // namespace

PipelineCost measure_pipeline_cost(const PipelineSpec& spec,
                                   const nic::NicConfig& cfg,
                                   std::uint64_t seed, std::size_t samples) {
  PipelineCost out;
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    auto stage = make_stage(spec.stages[s], seed + s);
    CostMeter meter(cfg);
    meter.set_stats(&stage->stats());
    const Ns period = stage->tick_period();
    Ns next_tick = period;
    for (std::size_t i = 0; i < samples; ++i) {
      meter.advance(usec(1));  // ~1Mpps measurement stream
      if (period > 0 && meter.now() >= next_tick) {
        stage->tick(meter);
        next_tick += period;
      }
      stage->process(meter, synth_packet(i));
    }
    StageCost sc;
    sc.name = stage->name();
    sc.ns_per_pkt =
        static_cast<double>(meter.consumed()) / static_cast<double>(samples);
    sc.state_bytes = stage->state_bytes();
    out.total_ns_per_pkt += sc.ns_per_pkt;
    out.state_bytes += sc.state_bytes;
    out.stages.push_back(std::move(sc));
  }
  return out;
}

std::size_t NicPool::add_nic(std::string name, nic::NicConfig cfg) {
  nics_.push_back(PoolNic{std::move(name), std::move(cfg), 0.0, 0, {}});
  return nics_.size() - 1;
}

void NicPool::set_tenant_quota(TenantId tenant, double max_fraction) {
  if (tenant == kNoTenant) return;
  quotas_[tenant] = std::min(1.0, std::max(1e-6, max_fraction));
}

double NicPool::tenant_quota(TenantId tenant) const {
  const auto it = quotas_.find(tenant);
  return it == quotas_.end() ? 1.0 : it->second;
}

double NicPool::tenant_utilization(std::size_t nic, TenantId tenant) const {
  if (nic >= nics_.size()) return 0.0;
  const auto it = nics_[nic].tenant_util.find(tenant);
  return it == nics_[nic].tenant_util.end() ? 0.0 : it->second;
}

NicPool::Choice NicPool::choose(const PipelineSpec& spec, double offered_pps,
                                std::uint64_t seed, TenantId tenant) const {
  // Per-NIC cost of this pipeline and the utilization it would add:
  // offered_pps * ns/pkt spread over the card's cores.  Failed cards are
  // not candidates.
  struct Candidate {
    bool live = false;
    double added = 0.0;
    double resulting = 0.0;
    double tenant_resulting = 0.0;  ///< tenant's share after placement
    bool quota_ok = true;
    PipelineCost cost;
  };
  const double quota = tenant_quota(tenant);
  std::vector<Candidate> cand(nics_.size());
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    if (nics_[i].failed) continue;
    cand[i].live = true;
    cand[i].cost = measure_pipeline_cost(spec, nics_[i].cfg, seed);
    cand[i].added = offered_pps * cand[i].cost.total_ns_per_pkt / 1e9 /
                    static_cast<double>(nics_[i].cfg.cores);
    cand[i].resulting = nics_[i].utilization + cand[i].added;
    cand[i].tenant_resulting =
        tenant_utilization(i, tenant) + cand[i].added;
    cand[i].quota_ok =
        tenant == kNoTenant || cand[i].tenant_resulting <= quota;
  }

  // First choice: among live NICs that stay under the saturation
  // threshold *and* under the tenant's quota, the one ending least
  // utilized (balances the pool as pipelines land).
  Choice out;
  std::size_t best = nics_.size();
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    if (!cand[i].live || cand[i].resulting > saturation_ ||
        !cand[i].quota_ok) {
      continue;
    }
    if (best == nics_.size() || cand[i].resulting < cand[best].resulting) {
      best = i;
    }
  }
  if (best == nics_.size()) {
    // Spillover: prefer quota-respecting cards even when saturated; only
    // when the tenant's quota excludes every card do we breach it — on
    // the card where the tenant's share stays smallest — and flag it.
    out.spilled = true;
    for (std::size_t i = 0; i < nics_.size(); ++i) {
      if (!cand[i].live || !cand[i].quota_ok) continue;
      if (best == nics_.size() || cand[i].resulting < cand[best].resulting) {
        best = i;
      }
    }
    if (best == nics_.size()) {
      out.quota_limited = true;
      for (std::size_t i = 0; i < nics_.size(); ++i) {
        if (!cand[i].live) continue;
        if (best == nics_.size() ||
            cand[i].tenant_resulting < cand[best].tenant_resulting) {
          best = i;
        }
      }
    }
  }
  out.nic = best;  // nics_.size() when every card is failed
  if (best < nics_.size()) {
    out.added = cand[best].added;
    out.cost = std::move(cand[best].cost);
  }
  return out;
}

void NicPool::commit(PlacedPipeline& p, const Choice& c) {
  p.nic = c.nic;
  p.on_host = false;
  p.utilization_added = c.added;
  nics_[c.nic].utilization += c.added;
  nics_[c.nic].pipelines += 1;
  if (p.tenant != kNoTenant) {
    nics_[c.nic].tenant_util[p.tenant] += c.added;
  }
}

void NicPool::release(PlacedPipeline& p) {
  if (p.on_host) {
    p.on_host = false;
    return;
  }
  PoolNic& n = nics_[p.nic];
  n.utilization = std::max(0.0, n.utilization - p.utilization_added);
  if (n.pipelines > 0) n.pipelines -= 1;
  if (p.tenant != kNoTenant) {
    const auto it = n.tenant_util.find(p.tenant);
    if (it != n.tenant_util.end()) {
      it->second = std::max(0.0, it->second - p.utilization_added);
    }
  }
  p.utilization_added = 0.0;
}

NicPool::Placement NicPool::place(const PipelineSpec& spec, double offered_pps,
                                  std::uint64_t seed, TenantId tenant) {
  if (nics_.empty()) {
    throw std::logic_error("NicPool::place called with no NICs in the pool");
  }

  PlacedPipeline rec;
  rec.id = next_pipeline_id_++;
  rec.spec = spec;
  rec.offered_pps = offered_pps;
  rec.seed = seed;
  rec.tenant = tenant;

  Choice c = choose(spec, offered_pps, seed, tenant);
  Placement p;
  if (c.nic == nics_.size()) {
    // Every card in the pool is dead: the pipeline runs on host cores,
    // degraded, until a revival brings a card back.
    rec.on_host = true;
    rec.degraded = true;
    rec.home_nic = 0;
    p.on_host = true;
    p.spilled = true;
  } else {
    commit(rec, c);
    rec.home_nic = c.nic;
    rec.degraded = c.spilled;
    p.nic = c.nic;
    p.spilled = c.spilled;
    p.quota_limited = c.quota_limited;
    p.utilization_added = c.added;
    p.cost = std::move(c.cost);
  }
  placed_.push_back(std::move(rec));
  return p;
}

NicPool::FailoverReport NicPool::fail_nic(std::size_t nic) {
  FailoverReport rep;
  if (nic >= nics_.size() || nics_[nic].failed) return rep;
  nics_[nic].failed = true;
  // Evict in placement order (deterministic) and re-place each pipeline
  // with the same logic fresh placements use.
  for (PlacedPipeline& r : placed_) {
    if (r.on_host || r.nic != nic) continue;
    release(r);
    const Choice c = choose(r.spec, r.offered_pps, r.seed, r.tenant);
    if (c.nic == nics_.size()) {
      r.on_host = true;
      r.degraded = true;
      ++rep.to_host;
      ++rep.degraded;
      continue;
    }
    commit(r, c);
    r.degraded = c.spilled;
    ++rep.moved;
    if (c.spilled) ++rep.degraded;
  }
  return rep;
}

std::size_t NicPool::revive_nic(std::size_t nic) {
  if (nic >= nics_.size() || !nics_[nic].failed) return 0;
  nics_[nic].failed = false;
  // Bring home every pipeline whose original placement was this card:
  // host-fallback ones first (they hurt the most), then by measured cost
  // ascending — cheap pipelines buy back the most offload per byte moved.
  struct Homecoming {
    PlacedPipeline* rec = nullptr;
    Choice choice;
  };
  std::vector<Homecoming> home;
  for (PlacedPipeline& r : placed_) {
    if (r.home_nic != nic) continue;
    if (!r.on_host && r.nic == nic) continue;  // never left (placed later)
    Homecoming h;
    h.rec = &r;
    h.choice.nic = nic;
    h.choice.cost = measure_pipeline_cost(r.spec, nics_[nic].cfg, r.seed);
    h.choice.added = r.offered_pps * h.choice.cost.total_ns_per_pkt / 1e9 /
                     static_cast<double>(nics_[nic].cfg.cores);
    home.push_back(std::move(h));
  }
  std::stable_sort(home.begin(), home.end(),
                   [](const Homecoming& a, const Homecoming& b) {
                     if (a.rec->on_host != b.rec->on_host) {
                       return a.rec->on_host;
                     }
                     if (a.choice.cost.total_ns_per_pkt !=
                         b.choice.cost.total_ns_per_pkt) {
                       return a.choice.cost.total_ns_per_pkt <
                              b.choice.cost.total_ns_per_pkt;
                     }
                     return a.rec->id < b.rec->id;
                   });
  std::size_t moved = 0;
  for (Homecoming& h : home) {
    release(*h.rec);
    commit(*h.rec, h.choice);
    h.rec->degraded = false;
    ++moved;
  }
  return moved;
}

std::size_t NicPool::degraded_count() const noexcept {
  std::size_t n = 0;
  for (const PlacedPipeline& r : placed_) {
    if (r.degraded || r.on_host) n += 1;
  }
  return n;
}

}  // namespace ipipe::nfp
