// Unit tests for the conservative parallel event engine (sim/parallel.h):
// window safety, cross-domain handoff ordering and cancellation, the
// zero-lookahead sequential fallback, thread-count-invariant determinism,
// and PeriodicTask ownership migrating across domains.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/parallel.h"
#include "sim/simulation.h"

namespace ipipe::sim {
namespace {

// FNV-1a over (domain, timestamp) execution records; an order digest that
// must be identical for every thread count.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(ParallelSim, SetupPostUsesFastPathAndRuns) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  ps.set_lookahead(a, b, 100);
  ps.set_lookahead(b, a, 100);

  int ran = 0;
  // Outside run(): post is a plain schedule_at, not ring-cancellable.
  const HandoffId h = ps.post(b, 50, [&] { ++ran; });
  EXPECT_FALSE(h.valid());
  ps.domain(a).schedule_at(10, [&] { ++ran; });

  EXPECT_EQ(ps.run(1000), 1000u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(ps.executed(), 2u);
  EXPECT_EQ(ps.domain(a).now(), 1000u);
  EXPECT_EQ(ps.domain(b).now(), 1000u);
}

TEST(ParallelSim, CrossDomainHandoffDeliversAtRequestedTime) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  ps.set_lookahead(a, b, 100);
  ps.set_lookahead(b, a, 100);

  Ns delivered_at = 0;
  ps.domain(a).schedule_at(500, [&] {
    EXPECT_EQ(ParallelSimulation::current_domain(), a);
    ps.post(b, 650, [&] {
      EXPECT_EQ(ParallelSimulation::current_domain(), b);
      delivered_at = ps.domain(b).now();
    });
  });
  ps.run(10'000);
  EXPECT_EQ(delivered_at, 650u);
  EXPECT_EQ(ps.stats(a).handoffs_out, 1u);
  EXPECT_EQ(ps.stats(b).handoffs_in, 1u);
  EXPECT_EQ(ps.stats(b).effective_lookahead, 100u);
}

TEST(ParallelSim, CancelInFlightHandoffBeforeDrain) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  // Wide windows: both of a's events land in the same round, so the
  // cancel reaches the ring before the barrier drains it.
  ps.set_lookahead(a, b, 10'000);
  ps.set_lookahead(b, a, 10'000);

  bool fired = false;
  HandoffId h;
  ps.domain(a).schedule_at(100, [&] {
    h = ps.post(b, 10'100, [&] { fired = true; });
    EXPECT_TRUE(h.valid());
  });
  ps.domain(a).schedule_at(200, [&] { EXPECT_TRUE(ps.cancel_handoff(h)); });
  ps.run(20'000);
  EXPECT_FALSE(fired);
  EXPECT_EQ(ps.stats(a).handoffs_cancelled, 1u);
  EXPECT_EQ(ps.stats(b).handoffs_in, 0u);
}

TEST(ParallelSim, CancelAfterDrainFailsLikeAPacketOnTheWire) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  // Narrow windows: b ticks every 50ns, so a's post at t=100 is drained
  // at a barrier well before a's cancel at t=400 executes.
  ps.set_lookahead(a, b, 50);
  ps.set_lookahead(b, a, 50);

  int b_ticks = 0;
  struct Ticker {
    Simulation& s;
    int* count;
    void tick() {
      ++*count;
      if (s.now() < 1000) s.schedule(50, [this] { tick(); });
    }
  } ticker{ps.domain(b), &b_ticks};
  ps.domain(b).schedule_at(0, [&] { ticker.tick(); });

  bool fired = false;
  bool cancel_result = true;
  HandoffId h;
  ps.domain(a).schedule_at(100, [&] {
    h = ps.post(b, 150, [&] { fired = true; });
  });
  ps.domain(a).schedule_at(400, [&] { cancel_result = ps.cancel_handoff(h); });
  ps.run(2000);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(ps.stats(a).handoffs_cancelled, 0u);
  EXPECT_GT(b_ticks, 10);
}

TEST(ParallelSim, SameTimestampCrossDomainOrderIsSourceIdOrder) {
  // Two producers hand an event to the same consumer at the identical
  // timestamp; the drain sorts by (when, src, seq), so execution order is
  // by source domain id regardless of thread schedule.
  for (const unsigned threads : {1u, 2u, 4u}) {
    ParallelSimulation ps;
    const DomainId a = ps.add_domain("a");
    const DomainId b = ps.add_domain("b");
    const DomainId c = ps.add_domain("c");
    for (DomainId s : {a, b}) {
      ps.set_lookahead(s, c, 100);
      ps.set_lookahead(c, s, 100);
    }
    ps.set_lookahead(a, b, 100);
    ps.set_lookahead(b, a, 100);
    ps.set_threads(threads);

    std::vector<int> order;
    ps.domain(b).schedule_at(500, [&] {
      ps.post(c, 1000, [&] { order.push_back(1); });
      ps.post(c, 1000, [&] { order.push_back(11); });
    });
    ps.domain(a).schedule_at(500, [&] {
      ps.post(c, 1000, [&] { order.push_back(0); });
    });
    ps.run(5000);
    ASSERT_EQ(order.size(), 3u) << "threads=" << threads;
    // src a (id 0) before src b (id 1); b's two posts keep their seq order.
    EXPECT_EQ(order[0], 0) << "threads=" << threads;
    EXPECT_EQ(order[1], 1) << "threads=" << threads;
    EXPECT_EQ(order[2], 11) << "threads=" << threads;
  }
}

// A ring of domains each running a local ticker that periodically hands
// work to the next domain; records every execution into a per-domain
// trace.  The merged digest must be identical for any thread count.
std::uint64_t run_ring_digest(unsigned threads, std::uint64_t* executed) {
  constexpr DomainId kD = 8;
  constexpr Ns kHorizon = 50'000;
  ParallelSimulation ps;
  for (DomainId d = 0; d < kD; ++d) ps.add_domain("r" + std::to_string(d));
  for (DomainId s = 0; s < kD; ++s) {
    for (DomainId d = 0; d < kD; ++d) {
      if (s != d) ps.set_lookahead(s, d, 300);
    }
  }
  ps.set_threads(threads);

  std::vector<std::vector<std::pair<DomainId, Ns>>> traces(kD);
  struct Node {
    ParallelSimulation& ps;
    std::vector<std::vector<std::pair<DomainId, Ns>>>& traces;
    DomainId d;
    void tick() {
      Simulation& s = ps.domain(d);
      traces[d].push_back({d, s.now()});
      if (s.now() >= kHorizon) return;
      // Hand one event to the next domain, staying >= the 300ns bound.
      const DomainId nxt = (d + 1) % kD;
      ps.post(nxt, s.now() + 301 + (s.now() % 7), [this, nxt] {
        traces[nxt].push_back({nxt, ps.domain(nxt).now()});
      });
      s.schedule(37 + d, [this] { tick(); });
    }
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (DomainId d = 0; d < kD; ++d) {
    nodes.push_back(std::make_unique<Node>(Node{ps, traces, d}));
    Node* n = nodes.back().get();
    ps.domain(d).schedule_at(d * 11, [n] { n->tick(); });
  }
  ps.run(kHorizon + 1000);
  if (executed != nullptr) *executed = ps.executed();

  // Merge the per-domain traces in (ts, domain, per-domain index) order —
  // the engine's canonical total order — and digest.
  std::vector<std::pair<Ns, DomainId>> merged;
  for (const auto& t : traces) {
    for (const auto& rec : t) merged.push_back({rec.second, rec.first});
  }
  std::sort(merged.begin(), merged.end());
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& [ts, d] : merged) h = fnv1a(fnv1a(h, ts), d);
  return h;
}

TEST(ParallelSim, RingWorkloadIsThreadCountInvariant) {
  std::uint64_t e1 = 0;
  const std::uint64_t d1 = run_ring_digest(1, &e1);
  EXPECT_GT(e1, 1000u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    std::uint64_t en = 0;
    EXPECT_EQ(run_ring_digest(threads, &en), d1) << "threads=" << threads;
    EXPECT_EQ(en, e1) << "threads=" << threads;
  }
}

TEST(ParallelSim, ZeroLookaheadForcesSequentialFallback) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  ps.set_lookahead(a, b, 0);  // e.g. a same-rack PCIe hop modeled as 0ns
  ps.set_lookahead(b, a, 100);
  ps.set_threads(8);
  EXPECT_TRUE(ps.sequential_fallback());

  // Interleaving is by (timestamp, domain id) and cross-domain posts may
  // land with zero delay.
  std::vector<int> order;
  ps.domain(a).schedule_at(10, [&] {
    order.push_back(0);
    ps.post(b, 10, [&] { order.push_back(1); });
  });
  ps.domain(b).schedule_at(10, [&] { order.push_back(2); });
  ps.run(100);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);  // (10, a) before (10, b)
  EXPECT_EQ(order[1], 2);  // b's own event was queued first at t=10
  EXPECT_EQ(order[2], 1);  // the zero-delay handoff arrives behind it
  EXPECT_EQ(ps.executed(), 3u);
}

TEST(ParallelSim, SequentialFallbackDrainsRingsImmediately) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  ps.set_lookahead(a, b, 0);
  EXPECT_TRUE(ps.sequential_fallback());

  bool fired = false;
  bool cancel_result = true;
  HandoffId h;
  ps.domain(a).schedule_at(10, [&] {
    h = ps.post(b, 500, [&] { fired = true; });
  });
  // In fallback mode the ring is drained right after the posting event,
  // so even an immediately-following cancel is already too late.
  ps.domain(a).schedule_at(11, [&] { cancel_result = ps.cancel_handoff(h); });
  ps.run(1000);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(cancel_result);
}

TEST(ParallelSim, StallCounterSeesWaitingDomain) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  ps.set_lookahead(a, b, 10);
  ps.set_lookahead(b, a, 10);
  // a ticks densely; b has one far-future event it cannot reach until
  // a's clock catches up 10ns at a time.
  struct Ticker {
    Simulation& s;
    void tick() {
      if (s.now() < 500) s.schedule(5, [this] { tick(); });
    }
  } ticker{ps.domain(a)};
  ps.domain(a).schedule_at(0, [&] { ticker.tick(); });
  bool fired = false;
  ps.domain(b).schedule_at(400, [&] { fired = true; });
  ps.run(1000);
  EXPECT_TRUE(fired);
  EXPECT_GT(ps.stats(b).stalled_windows, 0u);
  EXPECT_GT(ps.rounds(), 0u);
}

TEST(ParallelSim, PeriodicTaskMigratesAcrossDomains) {
  // An actor owning a PeriodicTask migrates from domain a to domain b:
  // the task is stopped on a, ownership crosses via a handoff, and a new
  // task resumes on b.  Tick counts must be exact and thread-invariant.
  for (const unsigned threads : {1u, 4u}) {
    ParallelSimulation ps;
    const DomainId a = ps.add_domain("a");
    const DomainId b = ps.add_domain("b");
    ps.set_lookahead(a, b, 100);
    ps.set_lookahead(b, a, 100);
    ps.set_threads(threads);

    int ticks_a = 0;
    int ticks_b = 0;
    auto task = std::make_unique<PeriodicTask>(ps.domain(a), 50,
                                               [&] { ++ticks_a; });
    task->start();
    // Keep b's clock moving so a's windows stay bounded (and vice versa).
    struct Ticker {
      Simulation& s;
      void tick() {
        if (s.now() < 2000) s.schedule(50, [this] { tick(); });
      }
    } ticker_b{ps.domain(b)};
    ps.domain(b).schedule_at(0, [&] { ticker_b.tick(); });

    ps.domain(a).schedule_at(501, [&] {
      task->stop();  // destructor semantics: no callback left behind
      task.reset();
      ps.post(b, 601, [&] {
        task = std::make_unique<PeriodicTask>(ps.domain(b), 50,
                                              [&] { ++ticks_b; });
        task->start();
      });
    });
    ps.domain(b).schedule_at(1101, [&] { task->stop(); });
    ps.run(3000);
    EXPECT_EQ(ticks_a, 10) << "threads=" << threads;  // 50..500
    EXPECT_EQ(ticks_b, 9) << "threads=" << threads;   // 651..1051
  }
}

TEST(ParallelSim, RepeatedLookaheadKeepsMinimum) {
  ParallelSimulation ps;
  const DomainId a = ps.add_domain("a");
  const DomainId b = ps.add_domain("b");
  ps.set_lookahead(a, b, 500);
  ps.set_lookahead(a, b, 200);
  ps.set_lookahead(a, b, 900);
  EXPECT_EQ(ps.lookahead(a, b), 200u);
  EXPECT_FALSE(ps.sequential_fallback());
}

}  // namespace
}  // namespace ipipe::sim
