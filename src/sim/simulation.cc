#include "sim/simulation.h"

#include <cassert>

namespace ipipe::sim {

EventId Simulation::schedule(Ns delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(Ns when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool Simulation::cancel(EventId id) noexcept {
  // A cancelled event stays in the heap as a tombstone (its id is no
  // longer in live_) and is skipped when it reaches the head.
  return live_.erase(id) > 0;
}

bool Simulation::step(Ns until) {
  while (!queue_.empty()) {
    const Event& head = queue_.top();
    if (head.when > until) return false;
    if (live_.find(head.id) == live_.end()) {
      queue_.pop();  // tombstone of a cancelled event
      continue;
    }
    // Move the callback out before popping: executing it may schedule new
    // events and reallocate the underlying heap.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    live_.erase(ev.id);
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

Ns Simulation::run(Ns until) {
  while (step(until)) {
  }
  if (until != ~Ns{0} && now_ < until) now_ = until;
  return now_;
}

}  // namespace ipipe::sim
