// Figure 18 (Appendix B.3): actor migration elapsed-time breakdown.
// Eight actors drawn from the three applications are force-migrated from
// the NIC to the host under ~90% network load; the four protocol phases
// (Prepare, drain-to-Ready, object move, buffered-request forwarding) are
// timed individually.
#include <cstdio>

#include "common/table.h"
#include "harness/trace_opts.h"
#include "ipipe/runtime.h"
#include "testbed/cluster.h"
#include "workloads/app_workloads.h"

using namespace ipipe;

namespace {

constexpr std::uint16_t kReq = 1;
constexpr std::uint16_t kRep = 2;

/// Stand-in actor with the state footprint and per-request cost of one of
/// the paper's application actors.
class AppActor final : public Actor {
 public:
  AppActor(std::string name, std::uint64_t state_bytes, Ns cost)
      : Actor(std::move(name)), state_bytes_(state_bytes), cost_(cost) {}

  [[nodiscard]] std::uint64_t region_bytes() const override {
    return state_bytes_ * 2 + MiB;
  }

  void init(ActorEnv& env) override {
    // Carve the private state into 32KB DMOs (object tables hold many
    // objects, not one blob).
    std::uint64_t remaining = state_bytes_;
    while (remaining > 0) {
      const auto chunk = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, 32 * KiB));
      (void)env.dmo_alloc(chunk);
      remaining -= chunk;
    }
  }

  void handle(ActorEnv& env, const netsim::Packet& req) override {
    env.charge(cost_);
    env.reply(req, kRep, {});
  }

 private:
  std::uint64_t state_bytes_;
  Ns cost_;
};

struct Candidate {
  const char* name;
  std::uint64_t state_bytes;
  Ns cost;
};

}  // namespace

int main(int argc, char** argv) {
  // --trace-out= captures the first candidate's run (all four migration
  // phases plus the surrounding exec/channel activity).
  const bench::TraceOpts trace = bench::parse_trace_opts(argc, argv);
  bool trace_written = false;
  // Actor state sizes follow §4 / Fig. 18: the LSM memtable dominates
  // (~32MB); filters are stateless; rankers/coordinators hold KBs-MBs.
  const Candidate candidates[] = {
      {"Filter", 16 * KiB, usec(2)},
      {"Count", 2 * MiB, usec(3)},
      {"Rank", 256 * KiB, usec(8)},
      {"Coord.", 4 * MiB, usec(3)},
      {"Parti.", 8 * MiB, usec(3)},
      {"Consensus", 6 * MiB, usec(2)},
      {"LSMmem.", 32 * MiB, usec(4)},
      {"KVcache", 16 * MiB, usec(3)},
  };

  std::printf(
      "\nFigure 18: migration elapsed time breakdown (ms) at ~90%% load, "
      "10GbE CN2350\n");
  TablePrinter table({"actor", "state", "Phase1", "Phase2", "Phase3",
                      "Phase4", "total"});
  for (const auto& cand : candidates) {
    testbed::Cluster cluster;
    testbed::ServerSpec spec;
    spec.ipipe.enable_migration = false;  // only the forced migration
    if (!trace_written) trace.apply(spec.ipipe);
    auto& server = cluster.add_server(spec);
    const ActorId id = server.runtime().register_actor(
        std::make_unique<AppActor>(cand.name, cand.state_bytes, cand.cost));

    workloads::EchoWorkloadParams wl;
    wl.server = 0;
    wl.frame_size = 512;
    wl.actor = id;
    wl.msg_type = kReq;
    auto& client = cluster.add_client(10.0, workloads::echo_workload(wl));
    // ~90% of one actor's service capacity.
    const double rate = 0.9 * 1e9 / static_cast<double>(
        cand.cost + nic::liquidio_cn2350().forwarding.cost(512));
    client.start_open_loop(rate, msec(120), true);

    cluster.sim().schedule(msec(5), [&] {
      server.runtime().start_migration(id, ActorLoc::kHost);
    });
    cluster.run_until(msec(120));
    if (trace.enabled() && !trace_written) {
      bench::write_cluster_trace(trace, cluster,
                                 std::string("fig18/") + cand.name);
      trace_written = true;
    }

    const auto* control = server.runtime().control(id);
    const auto& phases = control->mig_phase_ns;
    const double total =
        to_ms(phases[0] + phases[1] + phases[2] + phases[3]);
    table.add_row({cand.name,
                   cand.state_bytes >= MiB
                       ? strf("%lluMB", static_cast<unsigned long long>(
                                            cand.state_bytes / MiB))
                       : strf("%lluKB", static_cast<unsigned long long>(
                                            cand.state_bytes / KiB)),
                   strf("%.3f", to_ms(phases[0])), strf("%.3f", to_ms(phases[1])),
                   strf("%.3f", to_ms(phases[2])), strf("%.3f", to_ms(phases[3])),
                   strf("%.3f", total)});
  }
  table.print();
  std::printf(
      "Paper shape: phase 3 (object movement) dominates (~68%% on average; "
      "35.8ms for the 32MB LSM memtable), phase 4 (buffered-request "
      "forwarding) second (~27%%), phases 1-2 negligible.\n");
  return 0;
}
