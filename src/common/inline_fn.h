// Small-buffer-optimized move-only callable, the simulator's event type.
//
// `std::function` heap-allocates any capture beyond ~2 words and requires
// copyable callables (forcing shared_ptr shims around move-only state
// like PacketPtr).  InlineFn stores captures up to kInlineBytes in place,
// accepts move-only callables, and spills to the heap only for oversized
// captures — `spilled()` reports which path a given callable took, so the
// micro-benchmarks can measure both.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ipipe {

class InlineFn {
 public:
  /// Captures up to this many bytes never allocate.  48B fits the
  /// engine's largest hot-path capture (a this-pointer, a unique_ptr with
  /// a stateful deleter, and a couple of scalars) with room to spare.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineModel<Fn>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapModel<Fn>::ops;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }
  /// True when the capture was too large for the inline buffer.
  [[nodiscard]] bool spilled() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

  void operator()() { ops_->call(storage_); }

 private:
  struct Ops {
    void (*call)(void*);
    /// Move-construct into `dst` from `src` and destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn>
  struct InlineModel {
    static Fn* at(void* p) noexcept {
      return std::launder(reinterpret_cast<Fn*>(p));
    }
    static void call(void* p) { (*at(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*at(src)));
      at(src)->~Fn();
    }
    static void destroy(void* p) noexcept { at(p)->~Fn(); }
    static constexpr Ops ops{&call, &relocate, &destroy, false};
  };

  template <typename Fn>
  struct HeapModel {
    static Fn*& at(void* p) noexcept {
      return *std::launder(reinterpret_cast<Fn**>(p));
    }
    static void call(void* p) { (*at(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(at(src));
    }
    static void destroy(void* p) noexcept { delete at(p); }
    static constexpr Ops ops{&call, &relocate, &destroy, true};
  };

  void move_from(InlineFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ipipe
