#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace ipipe {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] ", level_name(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ipipe
